// Trace-validator corpus (check/trace_check.hpp): hand-built span
// fixtures with known violations — properly nested, partially
// overlapping, orphaned, and ring-buffer-truncated traces — plus a live
// end-to-end pass that profiles a real `mcast_lab run` and checks the
// trace it actually wrote.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/spec.hpp"
#include "check/trace_check.hpp"
#include "common/json.hpp"
#include "proc_util.hpp"

namespace mcast::check {
namespace {

struct fixture_span {
  const char* name;
  double ts_us;
  double dur_us;
  int tid;
};

// Builds a trace_event document from span tuples, the same shape
// obs::write_chrome_trace emits.
json::value make_trace(const std::vector<fixture_span>& spans,
                       std::uint64_t dropped = 0) {
  json::value events = json::value::array();
  for (const fixture_span& s : spans) {
    json::value e = json::value::object();
    e.set("name", json::value::string(s.name));
    e.set("ph", json::value::string("X"));
    e.set("ts", json::value::number(s.ts_us));
    e.set("dur", json::value::number(s.dur_us));
    e.set("pid", json::value::number(1.0));
    e.set("tid", json::value::number(static_cast<double>(s.tid)));
    events.push(std::move(e));
  }
  json::value other = json::value::object();
  other.set("dropped", json::value::number(static_cast<double>(dropped)));
  json::value doc = json::value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", json::value::string("ms"));
  doc.set("otherData", std::move(other));
  return doc;
}

std::vector<violation> check_trace(const std::string& spec_text,
                                   const json::value& doc) {
  return eval_trace_rules(parse_spec(spec_text, "t.expect"),
                          parse_trace(doc));
}

// A well-formed two-lane trace: experiment on lane 1 encloses everything;
// lane 2 runs two disjoint sweep_points; lane 1 nests a measure span.
const std::vector<fixture_span> k_nested = {
    {"experiment:fig2", 0.0, 1000.0, 1},
    {"monte_carlo_measure", 100.0, 200.0, 1},
    {"sweep_point", 50.0, 120.0, 2},
    {"sweep_point", 300.0, 80.0, 2},
};

TEST(check_trace, properly_nested_fixture_is_clean) {
  const auto v = check_trace(
      "span sweep_point within experiment:*\n"
      "span monte_carlo_measure within experiment:*\n"
      "span experiment:* count == 1\n"
      "span sweep_point count >= 2\n"
      "trace nested\n"
      "trace dropped == 0\n",
      make_trace(k_nested));
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].message);
}

TEST(check_trace, orphaned_span_fails_within) {
  // The second sweep_point starts inside the experiment but outlives it.
  const auto v = check_trace(
      "span sweep_point within experiment:*\n",
      make_trace({
          {"experiment:fig2", 0.0, 500.0, 1},
          {"sweep_point", 50.0, 100.0, 2},
          {"sweep_point", 450.0, 200.0, 2},
      }));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 1);
  EXPECT_EQ(v[0].rule, "span sweep_point within experiment:*");
  EXPECT_EQ(v[0].message,
            "span 'sweep_point' (tid 2, ts=450.000us, dur=200.000us) not "
            "enclosed by any span matching 'experiment:*'");
}

TEST(check_trace, span_fully_outside_any_parent_fails_within) {
  const auto v = check_trace(
      "span sweep_point within experiment:*\n",
      make_trace({{"sweep_point", 10.0, 5.0, 2}}));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("not enclosed"), std::string::npos);
}

TEST(check_trace, within_tolerates_serialization_rounding) {
  // Child end exceeds parent end by 1 rounding ulp (0.001us) — ts and dur
  // round independently at %.3f, so this must pass, not flake.
  const auto v = check_trace(
      "span child within parent\n",
      make_trace({
          {"parent", 0.0, 100.000, 1},
          {"child", 0.001, 100.000, 2},
      }));
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].message);
}

TEST(check_trace, partial_overlap_on_one_lane_fails_nested) {
  // Impossible for RAII scopes on one thread: b starts inside a but ends
  // after it. Exactly one violation, naming both spans and the lane.
  const auto v = check_trace(
      "trace nested\n",
      make_trace({
          {"a", 0.0, 100.0, 3},
          {"b", 50.0, 100.0, 3},
      }));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "trace nested");
  EXPECT_EQ(v[0].message,
            "spans overlap without nesting on lane 3: 'b' (tid 3, "
            "ts=50.000us, dur=100.000us) crosses the end of 'a' (tid 3, "
            "ts=0.000us, dur=100.000us)");
}

TEST(check_trace, overlap_across_lanes_is_fine) {
  // The same geometry split across two lanes is legal concurrency.
  const auto v = check_trace(
      "trace nested\n",
      make_trace({
          {"a", 0.0, 100.0, 1},
          {"b", 50.0, 100.0, 2},
      }));
  EXPECT_TRUE(v.empty());
}

TEST(check_trace, nested_reports_every_overlap) {
  const auto v = check_trace(
      "trace nested\n",
      make_trace({
          {"a", 0.0, 100.0, 1},
          {"b", 50.0, 100.0, 1},   // crosses a
          {"c", 0.0, 100.0, 2},
          {"d", 90.0, 100.0, 2},   // crosses c
      }));
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].message.find("lane 1"), std::string::npos);
  EXPECT_NE(v[1].message.find("lane 2"), std::string::npos);
}

TEST(check_trace, truncated_ring_fails_dropped_rule) {
  const auto v = check_trace(
      "trace dropped == 0\n"
      "trace nested\n",
      make_trace({{"experiment:fig2", 0.0, 10.0, 1}}, /*dropped=*/37));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].message, "trace dropped 37 event(s), want == 0");
  // A looser bound keeps a truncated-but-known trace green.
  EXPECT_TRUE(check_trace("trace dropped <= 100\n",
                          make_trace({}, /*dropped=*/37))
                  .empty());
}

TEST(check_trace, budget_and_count_rules) {
  const json::value doc = make_trace({
      {"sweep_point", 0.0, 1500.0, 1},
      {"sweep_point", 2000.0, 100.0, 1},
  });
  const auto v = check_trace("span sweep_point budget_ms 1\n", doc);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].message,
            "span 'sweep_point' (tid 1, ts=0.000us, dur=1500.000us) "
            "exceeds budget 1000.000us");

  const auto c = check_trace("span sweep_point count >= 3\n", doc);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].message, "span count for 'sweep_point' is 2, want >= 3");
  EXPECT_TRUE(check_trace("span sweep_point count == 2\n", doc).empty());
  EXPECT_TRUE(check_trace("span nonexistent count == 0\n", doc).empty());
}

// ---------------------------------------------------------------------------
// same_trace: per-request enclosure across lanes (args.trace_id).

struct traced_span {
  const char* name;
  double ts_us;
  double dur_us;
  int tid;
  const char* trace;  ///< args.trace_id hex string; nullptr = no args
};

json::value make_traced(const std::vector<traced_span>& spans) {
  json::value events = json::value::array();
  for (const traced_span& s : spans) {
    json::value e = json::value::object();
    e.set("name", json::value::string(s.name));
    e.set("ph", json::value::string("X"));
    e.set("ts", json::value::number(s.ts_us));
    e.set("dur", json::value::number(s.dur_us));
    e.set("pid", json::value::number(1.0));
    e.set("tid", json::value::number(static_cast<double>(s.tid)));
    if (s.trace != nullptr) {
      json::value args = json::value::object();
      args.set("trace_id", json::value::string(s.trace));
      e.set("args", std::move(args));
    }
    events.push(std::move(e));
  }
  json::value doc = json::value::object();
  doc.set("traceEvents", std::move(events));
  return doc;
}

TEST(check_trace, same_trace_modifier_parses) {
  const spec s = parse_spec("span chunk within request same_trace\n"
                            "span chunk within request\n",
                            "t.expect");
  ASSERT_EQ(s.rules.size(), 2u);
  EXPECT_TRUE(s.rules[0].same_trace);
  EXPECT_FALSE(s.rules[1].same_trace);

  // Anything after the parent glob other than `same_trace` is a typo the
  // spec parser must name, not silently accept.
  try {
    parse_spec("span chunk within request sametrace\n", "t.expect");
    FAIL() << "expected spec_error";
  } catch (const spec_error& e) {
    EXPECT_NE(std::string(e.what()).find("same_trace"), std::string::npos)
        << e.what();
  }
}

TEST(check_trace, same_trace_distinguishes_interleaved_requests) {
  // Two requests interleave: request B's chunk runs (in time) inside
  // request A's root span on another lane. Plain `within` cannot tell
  // them apart; `same_trace` pins the chunk to its own request.
  const std::vector<traced_span> interleaved = {
      {"request", 0.0, 1000.0, 1, "000000000000000a"},
      {"request", 10.0, 500.0, 2, "000000000000000b"},
      {"scatter.chunk", 50.0, 100.0, 3, "000000000000000b"},
  };
  EXPECT_TRUE(check_trace("span scatter.chunk within request\n",
                          make_traced(interleaved))
                  .empty());
  EXPECT_TRUE(check_trace("span scatter.chunk within request same_trace\n",
                          make_traced(interleaved))
                  .empty());

  // Drop request B's root: the chunk still sits inside A's span, so the
  // plain rule passes — but the same_trace rule must flag it.
  const std::vector<traced_span> orphan = {
      {"request", 0.0, 1000.0, 1, "000000000000000a"},
      {"scatter.chunk", 50.0, 100.0, 3, "000000000000000b"},
  };
  EXPECT_TRUE(check_trace("span scatter.chunk within request\n",
                          make_traced(orphan))
                  .empty());
  const auto v = check_trace("span scatter.chunk within request same_trace\n",
                             make_traced(orphan));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("with the same trace id"), std::string::npos)
      << v[0].message;
}

TEST(check_trace, same_trace_rejects_untagged_children) {
  // A same_trace rule asserts the id plumbing itself: a child span with
  // no trace id is a broken propagation path, not a pass.
  const auto v = check_trace(
      "span scatter.chunk within request same_trace\n",
      make_traced({
          {"request", 0.0, 1000.0, 1, "000000000000000a"},
          {"scatter.chunk", 50.0, 100.0, 3, nullptr},
      }));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("carries no trace id"), std::string::npos)
      << v[0].message;
}

TEST(check_trace, malformed_trace_ids_throw_with_index) {
  const auto reject = [](const char* trace, const char* fragment) {
    try {
      parse_trace(make_traced({{"a", 0.0, 1.0, 1, trace}}));
      FAIL() << "expected invalid_argument for trace_id '" << trace << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("traceEvents[0]"),
                std::string::npos)
          << e.what();
    }
  };
  reject("", "trace_id");
  reject("xyz", "trace_id");
  reject("00000000000000001", "trace_id");  // 17 chars

  // Absent args (or args without a trace_id) stay valid: untagged spans
  // are the normal case outside the service.
  EXPECT_EQ(parse_trace(make_traced({{"a", 0.0, 1.0, 1, nullptr}}))
                .spans[0]
                .trace_id,
            0u);
  EXPECT_EQ(parse_trace(make_traced({{"a", 0.0, 1.0, 1, "00ff"}}))
                .spans[0]
                .trace_id,
            0xffu);
}

TEST(check_trace, bare_array_and_non_x_phases) {
  // Bare-array form, with a metadata event that has no name/dur: valid.
  const parsed_trace t = parse_trace(json::parse(
      R"([{"ph": "M", "pid": 1},)"
      R"( {"name": "a", "ph": "X", "ts": 1, "dur": 2, "pid": 1, "tid": 4}])"));
  EXPECT_EQ(t.events, 2u);
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_EQ(t.spans[0].tid, 4u);
  EXPECT_EQ(t.dropped, 0u);
}

TEST(check_trace, malformed_events_throw_with_index) {
  const auto reject = [](const char* text, const char* fragment) {
    try {
      parse_trace(json::parse(text));
      FAIL() << "expected invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  reject(R"({"traceEvents": 5})", "no 'traceEvents' array");
  reject(R"("just a string")", "neither a trace_event object nor");
  reject(R"([42])", "traceEvents[0]: event is not an object");
  reject(R"([{"name": "a"}])", "traceEvents[0]: missing or non-string 'ph'");
  reject(R"([{"ph": "X", "ts": 1, "dur": 2, "tid": 1}])",
         "traceEvents[0]: missing or non-string 'name'");
  reject(R"([{"ph": "M"}, {"name": "a", "ph": "X", "dur": 2, "tid": 1}])",
         "traceEvents[1]: missing 'ts'");
  reject(R"([{"name": "a", "ph": "X", "ts": 1, "dur": "fast", "tid": 1}])",
         "traceEvents[0]: 'dur' is not a number");
  reject(R"([{"name": "a", "ph": "X", "ts": 1, "dur": -2, "tid": 1}])",
         "traceEvents[0]: 'dur' is negative");
}

// ---------------------------------------------------------------------------
// Live end-to-end: profile a real run, then check the real artifacts.

#ifdef MCAST_LAB_BIN

std::string temp_path(const char* name) {
  return ::testing::TempDir() + std::string("check_trace_") + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  ASSERT_TRUE(f.good()) << path;
  f << text;
}

TEST(check_trace_live, real_run_passes_and_violated_spec_fails) {
  const std::string dir = temp_path("run");
  const std::string trace = dir + "/trace.json";
  const auto run = testproc::run(
      MCAST_LAB_BIN, {"run", "fig2", "--scale", "0", "--manifest-dir", dir,
                      "--profile=" + trace});
  ASSERT_EQ(run.exit_code, 0) << run.err;

  // The real trace honors the causal-nesting contract.
  const std::string good = temp_path("good.expect");
  write_file(good,
             "span sweep_point within experiment:*\n"
             "span experiment:* count >= 1\n"
             "trace nested\n"
             "trace dropped == 0\n"
             "assert hist.sched.task_ns.count == counter.sched.tasks\n");
  const auto pass = testproc::run(
      MCAST_LAB_BIN, {"check", "--manifest", dir + "/BENCH_fig2.json",
                      "--expect", good, "--trace", trace});
  EXPECT_EQ(pass.exit_code, 0) << pass.out << pass.err;
  EXPECT_NE(pass.out.find(": pass"), std::string::npos) << pass.out;

  // A spec the run cannot satisfy exits 3 and names the rule.
  const std::string bad = temp_path("bad.expect");
  write_file(bad, "span experiment:* count >= 999\n");
  const auto fail = testproc::run(
      MCAST_LAB_BIN, {"check", "--manifest", dir + "/BENCH_fig2.json",
                      "--expect", bad, "--trace", trace});
  EXPECT_EQ(fail.exit_code, 3) << fail.out << fail.err;
  EXPECT_NE(fail.out.find("span count for 'experiment:*'"),
            std::string::npos)
      << fail.out;

  // Trace rules without --trace are a spec error (exit 2), not a pass.
  const auto no_trace = testproc::run(
      MCAST_LAB_BIN, {"check", "--manifest", dir + "/BENCH_fig2.json",
                      "--expect", bad});
  EXPECT_EQ(no_trace.exit_code, 2) << no_trace.out << no_trace.err;
}

#endif  // MCAST_LAB_BIN

}  // namespace
}  // namespace mcast::check
