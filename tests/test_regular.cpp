// Regular topology generators: exact structure checks.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(regular, path_structure) {
  const graph g = make_path(6);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(5), 1u);
  for (node_id v = 1; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.name(), "path6");
}

TEST(regular, single_node_path) {
  const graph g = make_path(1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(regular, ring_structure) {
  const graph g = make_ring(5);
  EXPECT_EQ(g.edge_count(), 5u);
  for (node_id v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(regular, star_structure) {
  const graph g = make_star(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (node_id v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(regular, complete_structure) {
  const graph g = make_complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  for (node_id v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(regular, grid_structure) {
  const graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(1), 3u);   // edge
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
  EXPECT_TRUE(is_connected(g));
}

TEST(regular, degenerate_grids) {
  EXPECT_EQ(make_grid(1, 5).edge_count(), 4u);  // a path
  EXPECT_EQ(make_grid(5, 1).edge_count(), 4u);
  EXPECT_EQ(make_grid(1, 1).edge_count(), 0u);
}

TEST(regular, torus_structure) {
  const graph g = make_torus(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  // Every node has exactly 4 neighbors (wrap-around regularity).
  for (node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.edge_count(), 40u);
  EXPECT_TRUE(is_connected(g));
  // Wrap links exist: (0,0)-(0,4) and (0,0)-(3,0).
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(0, 15));
  EXPECT_THROW(make_torus(2, 5), std::invalid_argument);
}

TEST(regular, hypercube_structure) {
  const graph g = make_hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // n * dim / 2
  for (node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
  // Neighbors differ in exactly one bit.
  for (node_id w : g.neighbors(5)) {
    const node_id diff = w ^ 5u;
    EXPECT_EQ(diff & (diff - 1), 0u) << "not a single-bit flip";
  }
  EXPECT_THROW(make_hypercube(0), std::invalid_argument);
  EXPECT_THROW(make_hypercube(21), std::invalid_argument);
}

TEST(regular, hypercube_distance_is_hamming) {
  const graph g = make_hypercube(5);
  const std::vector<hop_count> d = bfs_distances(g, 0);
  for (node_id v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(d[v], static_cast<hop_count>(__builtin_popcount(v)));
  }
}

TEST(regular, invalid_parameters_throw) {
  EXPECT_THROW(make_path(0), std::invalid_argument);
  EXPECT_THROW(make_star(0), std::invalid_argument);
  EXPECT_THROW(make_complete(0), std::invalid_argument);
  EXPECT_THROW(make_grid(0, 3), std::invalid_argument);
  EXPECT_THROW(make_grid(3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
