// Exact k-ary expressions (Eqs 4-6, 19-21) validated three ways: small-case
// hand arithmetic, difference-operator identities, and Monte-Carlo
// simulation on the actual tree graph.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/kary_exact.hpp"
#include "analysis/stats.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "sim/rng.hpp"
#include "topo/kary.hpp"

namespace mcast {
namespace {

TEST(kary_exact, single_draw_is_full_depth_path) {
  // One leaf receiver uses exactly D links.
  for (unsigned k : {2u, 3u, 5u}) {
    for (unsigned d : {1u, 3u, 7u}) {
      EXPECT_NEAR(kary_tree_size_leaves(k, d, 1.0), d, 1e-9);
    }
  }
}

TEST(kary_exact, zero_draws_zero_links) {
  EXPECT_DOUBLE_EQ(kary_tree_size_leaves(2, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(kary_tree_size_all_sites(2, 5, 0.0), 0.0);
}

TEST(kary_exact, saturates_at_full_tree) {
  // n >> M: every link ends up in the tree; total links = (k^{D+1}-k)/(k-1).
  const unsigned k = 3, d = 4;
  const double total_links = (std::pow(3.0, 5.0) - 3.0) / 2.0;
  EXPECT_NEAR(kary_tree_size_leaves(k, d, 1e9), total_links, 1e-6);
  EXPECT_NEAR(kary_tree_size_all_sites(k, d, 1e9), total_links, 1e-6);
}

TEST(kary_exact, two_draw_hand_computation) {
  // k=2, D=2, n=2: Eq 4 = 2(1-(1/2)^2) + 4(1-(3/4)^2) = 1.5 + 1.75 = 3.25.
  EXPECT_NEAR(kary_tree_size_leaves(2, 2, 2.0), 3.25, 1e-12);
}

TEST(kary_exact, difference_identities) {
  // The analytic Δ and Δ² must match discrete differences of Eq 4.
  const unsigned k = 2, d = 6;
  for (double n : {0.0, 1.0, 5.0, 17.0, 40.0}) {
    const double l0 = kary_tree_size_leaves(k, d, n);
    const double l1 = kary_tree_size_leaves(k, d, n + 1.0);
    const double l2 = kary_tree_size_leaves(k, d, n + 2.0);
    EXPECT_NEAR(kary_tree_size_delta_leaves(k, d, n), l1 - l0, 1e-9);
    EXPECT_NEAR(kary_tree_size_delta2_leaves(k, d, n), l2 + l0 - 2.0 * l1, 1e-9);
  }
}

TEST(kary_exact, delta_decreasing_and_bounded_by_depth) {
  // ΔL̂ starts at D (first receiver adds a whole path) and decreases.
  const unsigned k = 3, d = 5;
  EXPECT_NEAR(kary_tree_size_delta_leaves(k, d, 0.0), d, 1e-12);
  double prev = d + 1.0;
  for (double n = 0.0; n < 2000.0; n += 50.0) {
    const double delta = kary_tree_size_delta_leaves(k, d, n);
    EXPECT_LT(delta, prev);
    EXPECT_GT(delta, 0.0);
    prev = delta;
  }
}

TEST(kary_exact, second_difference_negative) {
  // L̂ is concave in n.
  for (double n : {0.0, 3.0, 100.0, 5000.0}) {
    EXPECT_LT(kary_tree_size_delta2_leaves(2, 8, n), 0.0);
  }
}

TEST(kary_exact, monte_carlo_agreement_leaves) {
  // Eq 4 against simulation on the materialized binary tree, depth 7.
  const unsigned k = 2, d = 7;
  const kary_shape shape(k, d);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> leaves = leaf_sites(shape.first_leaf(), shape.leaf_count());
  rng gen(99);
  delivery_tree_builder builder(tree);
  for (std::size_t n : {1u, 4u, 16u, 64u, 256u}) {
    running_stats s;
    for (int rep = 0; rep < 600; ++rep) {
      builder.reset();
      for (node_id v : sample_with_replacement(leaves, n, gen)) {
        builder.add_receiver(v);
      }
      s.add(static_cast<double>(builder.link_count()));
    }
    const double predicted = kary_tree_size_leaves(k, d, static_cast<double>(n));
    EXPECT_NEAR(s.mean(), predicted, 5.0 * s.stderr_mean() + 0.02 * predicted)
        << "n=" << n;
  }
}

TEST(kary_exact, monte_carlo_agreement_all_sites) {
  // Eq 21 against simulation with receivers anywhere except the root.
  const unsigned k = 3, d = 4;
  const kary_shape shape(k, d);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  rng gen(7);
  delivery_tree_builder builder(tree);
  for (std::size_t n : {1u, 8u, 32u, 128u}) {
    running_stats s;
    for (int rep = 0; rep < 600; ++rep) {
      builder.reset();
      for (node_id v : sample_with_replacement(universe, n, gen)) {
        builder.add_receiver(v);
      }
      s.add(static_cast<double>(builder.link_count()));
    }
    const double predicted = kary_tree_size_all_sites(k, d, static_cast<double>(n));
    EXPECT_NEAR(s.mean(), predicted, 5.0 * s.stderr_mean() + 0.02 * predicted)
        << "n=" << n;
  }
}

TEST(kary_exact, all_sites_single_draw_is_mean_distance) {
  // With one receiver anywhere, E[L] = mean root-to-site distance.
  const unsigned k = 2, d = 6;
  EXPECT_NEAR(kary_tree_size_all_sites(k, d, 1.0),
              kary_unicast_mean_all_sites(k, d), 1e-9);
}

TEST(kary_exact, link_probability_reduces_to_leaf_form_in_deep_trees) {
  // Section 3.4: for fixed l and large D the all-sites probability tends to
  // the leaf-only expression 1/k^l... the *usage* probability k^{-l} times
  // the at-or-below factor, which -> 1.
  const unsigned k = 2;
  const unsigned l = 3;
  const double leaf_form = 1.0 / std::pow(2.0, 3.0);
  EXPECT_NEAR(kary_link_probability_all_sites(k, 30, l) / leaf_form, 1.0, 1e-6);
  // In a shallow tree the factor is materially below 1.
  EXPECT_LT(kary_link_probability_all_sites(k, 4, 3) / leaf_form, 0.95);
}

TEST(kary_exact, counts_and_means) {
  EXPECT_DOUBLE_EQ(kary_leaf_count(2, 10), 1024.0);
  EXPECT_DOUBLE_EQ(kary_site_count_all(2, 2), 6.0);   // 7 nodes - root
  EXPECT_DOUBLE_EQ(kary_unicast_mean_leaves(9), 9.0);
  // k=2, D=2: (1*2 + 2*4)/6 = 10/6.
  EXPECT_NEAR(kary_unicast_mean_all_sites(2, 2), 10.0 / 6.0, 1e-12);
}

TEST(kary_exact, h_exact_tracks_linear_approximation_mid_range) {
  // Fig 2a: k=2 fits h(x) ≈ x k^{-1/2} well for x not too small.
  const unsigned k = 2, d = 14;
  for (double x : {0.2, 0.4, 0.6, 0.8}) {
    const double h = kary_h_exact(k, d, x);
    EXPECT_NEAR(h, x / std::sqrt(2.0), 0.08) << "x=" << x;
  }
}

TEST(kary_exact, h_exact_diverges_for_tiny_x) {
  // The paper notes h as defined diverges for x << 1/M.
  const unsigned k = 2, d = 10;
  EXPECT_GT(kary_h_exact(k, d, 1e-6), kary_h_exact(k, d, 0.5) + 1.0);
}

TEST(kary_exact, distinct_receivers_composition) {
  // L(m) == L̂(n(m)) by construction; check endpoints and monotonicity.
  const unsigned k = 2, d = 8;
  EXPECT_NEAR(kary_tree_size_distinct_leaves(k, d, 1.0), d, 0.05);
  double prev = 0.0;
  for (double m = 1.0; m < 256.0; m *= 2.0) {
    const double lm = kary_tree_size_distinct_leaves(k, d, m);
    EXPECT_GT(lm, prev);
    prev = lm;
  }
}

TEST(kary_exact, validation) {
  EXPECT_THROW(kary_tree_size_leaves(1, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(kary_tree_size_leaves(2, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(kary_tree_size_leaves(2, 3, -1.0), std::invalid_argument);
  EXPECT_THROW(kary_h_exact(2, 3, 0.0), std::invalid_argument);
  EXPECT_THROW(kary_link_probability_all_sites(2, 3, 0), std::invalid_argument);
  EXPECT_THROW(kary_link_probability_all_sites(2, 3, 4), std::invalid_argument);
  EXPECT_THROW(kary_tree_size_distinct_leaves(2, 3, 8.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
