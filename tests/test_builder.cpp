// graph_builder: cleaning semantics (dedup, self-loops), reuse, errors.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"

namespace mcast {
namespace {

TEST(builder, removes_duplicate_edges) {
  graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // reversed duplicate
  b.add_edge(1, 2);
  EXPECT_EQ(b.raw_edge_count(), 4u);
  const graph g = b.build();
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(builder, removes_self_loops) {
  graph_builder b(2);
  b.add_edge(0, 0);
  b.add_edge(1, 1);
  b.add_edge(0, 1);
  const graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(builder, zero_node_graph) {
  graph_builder b(0);
  const graph g = b.build();
  EXPECT_TRUE(g.empty());
}

TEST(builder, endpoint_out_of_range_throws) {
  graph_builder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(b.add_edge(2, 0), std::out_of_range);
}

TEST(builder, has_edge_slow_sees_both_orientations) {
  graph_builder b(3);
  b.add_edge(2, 1);
  EXPECT_TRUE(b.has_edge_slow(2, 1));
  EXPECT_TRUE(b.has_edge_slow(1, 2));
  EXPECT_FALSE(b.has_edge_slow(0, 1));
}

TEST(builder, build_is_repeatable) {
  graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const graph g1 = b.build();
  const graph g2 = b.build();
  EXPECT_EQ(g1.edge_count(), g2.edge_count());
  EXPECT_EQ(g1.edges(), g2.edges());
  // Builder still usable afterwards.
  b.add_edge(0, 2);
  EXPECT_EQ(b.build().edge_count(), 3u);
}

TEST(builder, name_propagates) {
  graph_builder b(1);
  b.set_name("tiny");
  EXPECT_EQ(b.build().name(), "tiny");
}

TEST(builder, adjacency_sorted_after_unordered_insertion) {
  graph_builder b(5);
  b.add_edge(4, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 2);
  b.add_edge(1, 2);
  const graph g = b.build();
  const auto adj = g.neighbors(2);
  ASSERT_EQ(adj.size(), 4u);
  EXPECT_EQ(adj[0], 0u);
  EXPECT_EQ(adj[1], 1u);
  EXPECT_EQ(adj[2], 3u);
  EXPECT_EQ(adj[3], 4u);
}

}  // namespace
}  // namespace mcast
