// Fault subsystem: failure models (determinism, distributions), degraded
// views (masking semantics) and failure-aware traversals.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "fault/degraded.hpp"
#include "fault/failure_model.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/weights.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

TEST(failure_model, random_link_failures_deterministic) {
  waxman_params p;
  p.nodes = 120;
  const graph g = make_waxman(p, 3);
  const failure_set a = random_link_failures(g, 0.1, 42);
  const failure_set b = random_link_failures(g, 0.1, 42);
  EXPECT_EQ(a.links, b.links);
  const failure_set c = random_link_failures(g, 0.1, 43);
  EXPECT_NE(a.links, c.links);  // overwhelmingly likely on 100+ links
}

TEST(failure_model, random_link_failures_extremes_and_range) {
  waxman_params p;
  p.nodes = 100;
  const graph g = make_waxman(p, 1);
  EXPECT_TRUE(random_link_failures(g, 0.0, 7).empty());
  const failure_set all = random_link_failures(g, 1.0, 7);
  EXPECT_EQ(all.links.size(), g.edge_count());
  const failure_set some = random_link_failures(g, 0.3, 7);
  EXPECT_GT(some.links.size(), 0u);
  EXPECT_LT(some.links.size(), g.edge_count());
  for (const edge& e : some.links) {
    EXPECT_LT(e.a, e.b);
    EXPECT_TRUE(g.has_edge(e.a, e.b));
  }
  EXPECT_TRUE(std::is_sorted(some.links.begin(), some.links.end(),
                             [](const edge& x, const edge& y) {
                               return x.a != y.a ? x.a < y.a : x.b < y.b;
                             }));
  EXPECT_THROW(random_link_failures(g, -0.1, 7), std::invalid_argument);
  EXPECT_THROW(random_link_failures(g, 1.1, 7), std::invalid_argument);
}

TEST(failure_model, targeted_hub_failures_picks_highest_degree) {
  // Star: node 0 is the hub.
  graph_builder b(5);
  for (node_id v = 1; v < 5; ++v) b.add_edge(0, v);
  const graph g = b.build();
  const failure_set one = targeted_hub_failures(g, 1);
  ASSERT_EQ(one.nodes.size(), 1u);
  EXPECT_EQ(one.nodes[0], 0u);
  // Ties break toward the lower id: all leaves have degree 1.
  const failure_set three = targeted_hub_failures(g, 3);
  EXPECT_EQ(three.nodes, (std::vector<node_id>{0, 1, 2}));
  EXPECT_THROW(targeted_hub_failures(g, 6), std::invalid_argument);
  EXPECT_TRUE(targeted_hub_failures(g, 0).empty());
}

TEST(failure_model, trace_is_sorted_alternating_and_deterministic) {
  waxman_params p;
  p.nodes = 60;
  const graph g = make_waxman(p, 5);
  failure_trace_params tp;
  tp.link_failure_rate = 0.01;
  tp.mean_repair_time = 5.0;
  tp.horizon = 500.0;
  const auto a = make_failure_trace(g, tp, 11);
  const auto b = make_failure_trace(g, tp, 11);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 0u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].time, a[i].time);
  }
  // Per link: first event fails, then strict alternation, all in horizon.
  for (const edge& e : g.edges()) {
    bool expect_fail = true;
    for (const link_event& ev : a) {
      if (ev.link == e) {
        EXPECT_EQ(ev.fails, expect_fail);
        expect_fail = !expect_fail;
        EXPECT_GE(ev.time, 0.0);
        EXPECT_LT(ev.time, tp.horizon);
      }
    }
  }
  EXPECT_THROW(make_failure_trace(g, {0.0, 5.0, 100.0}, 1),
               std::invalid_argument);
}

TEST(degraded_view, link_and_node_masking) {
  const graph g = make_path(4);  // 0-1-2-3
  degraded_view view(g);
  EXPECT_TRUE(view.pristine());
  EXPECT_TRUE(view.usable(1, 2));

  EXPECT_TRUE(view.fail_link(1, 2));
  EXPECT_FALSE(view.fail_link(2, 1));  // already down, either orientation
  EXPECT_EQ(view.failed_link_count(), 1u);
  EXPECT_FALSE(view.link_alive(1, 2));
  EXPECT_FALSE(view.usable(2, 1));
  EXPECT_TRUE(view.usable(0, 1));

  EXPECT_TRUE(view.fail_node(0));
  EXPECT_FALSE(view.node_alive(0));
  EXPECT_FALSE(view.usable(0, 1));  // node down masks its links
  EXPECT_TRUE(view.link_alive(0, 1));  // ...without failing them

  EXPECT_TRUE(view.restore_link(1, 2));
  EXPECT_FALSE(view.restore_link(1, 2));
  EXPECT_TRUE(view.restore_node(0));
  EXPECT_TRUE(view.pristine());
  EXPECT_TRUE(view.usable(0, 1));

  EXPECT_THROW(view.fail_link(0, 2), std::invalid_argument);  // no such link
  EXPECT_THROW(view.fail_link(0, 9), std::out_of_range);
  EXPECT_THROW(view.fail_node(9), std::out_of_range);
}

TEST(degraded_view, apply_clear_and_version) {
  const graph g = make_ring(6);
  degraded_view view(g);
  const std::uint64_t v0 = view.version();
  failure_set scenario;
  scenario.links.push_back({0, 1});
  scenario.links.push_back({2, 3});
  scenario.nodes.push_back(5);
  view.apply(scenario);
  EXPECT_EQ(view.failed_link_count(), 2u);
  EXPECT_EQ(view.failed_node_count(), 1u);
  EXPECT_GT(view.version(), v0);
  const std::uint64_t v1 = view.version();
  view.clear();
  EXPECT_TRUE(view.pristine());
  EXPECT_GT(view.version(), v1);
  view.clear();  // clearing a pristine view is a no-op
  EXPECT_EQ(view.version(), v1 + 1);
}

TEST(degraded_bfs, matches_plain_bfs_on_pristine_view) {
  waxman_params p;
  p.nodes = 90;
  const graph g = make_waxman(p, 9);
  const degraded_view view(g);
  for (node_id s : {node_id{0}, node_id{17}, node_id{89}}) {
    const bfs_tree plain = bfs_from(g, s);
    const bfs_tree masked = bfs_from(view, s);
    EXPECT_EQ(plain.dist, masked.dist);
    EXPECT_EQ(plain.parent, masked.parent);  // same lowest-id parent rule
  }
}

TEST(degraded_bfs, routes_around_and_partitions) {
  const graph g = make_path(4);  // 0-1-2-3
  degraded_view view(g);
  view.fail_link(1, 2);
  const bfs_tree t = bfs_from(view, 0);
  EXPECT_EQ(t.dist[1], 1u);
  EXPECT_EQ(t.dist[2], unreachable);
  EXPECT_EQ(t.dist[3], unreachable);

  view.clear();
  view.fail_node(1);
  const auto d = bfs_distances(view, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], unreachable);
  EXPECT_EQ(d[2], unreachable);

  // A failed source reaches nothing — not even itself.
  const bfs_tree dead = bfs_from(view, 1);
  for (node_id v = 0; v < 4; ++v) EXPECT_EQ(dead.dist[v], unreachable);

  // Redundancy heals: on a cycle the failed link is routed around.
  const graph c = make_ring(5);
  degraded_view cv(c);
  cv.fail_link(0, 1);
  const auto cd = bfs_distances(cv, 0);
  EXPECT_EQ(cd[1], 4u);  // the long way round
}

TEST(degraded_dijkstra, honors_mask) {
  const graph g = make_ring(4);  // 0-1-2-3-0
  edge_weights w(g, 1.0);
  degraded_view view(g);
  view.fail_link(0, 1);
  const weighted_tree t = dijkstra_from(view, w, 0);
  EXPECT_DOUBLE_EQ(t.dist[1], 3.0);  // 0-3-2-1
  EXPECT_DOUBLE_EQ(t.dist[3], 1.0);
  view.fail_node(0);
  const weighted_tree dead = dijkstra_from(view, w, 0);
  EXPECT_FALSE(dead.reached(0));
  EXPECT_FALSE(dead.reached(2));
}

}  // namespace
}  // namespace mcast
