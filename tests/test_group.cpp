// Group membership control plane: manager bookkeeping, churn drivers, and
// the determinism contract (same op sequence => byte-identical state, at
// any thread count, with trace replay equivalent to the live run).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/weights.hpp"
#include "group/churn.hpp"
#include "group/group_manager.hpp"
#include "multicast/shared_tree.hpp"
#include "sim/rng.hpp"
#include "topo/kary.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

std::shared_ptr<const graph> kary() {
  return std::make_shared<const graph>(make_kary_tree(2, 3));
}

std::shared_ptr<const graph> waxman(std::uint64_t seed = 7) {
  waxman_params p;
  p.nodes = 120;
  return std::make_shared<const graph>(make_waxman(p, seed));
}

void expect_equal(const group_snapshot& a, const group_snapshot& b) {
  EXPECT_EQ(a.scope, b.scope);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.sites, b.sites);
  EXPECT_EQ(a.links, b.links);
  EXPECT_EQ(a.cost, b.cost);  // bitwise: same op sequence, same arithmetic
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.links_grafted, b.links_grafted);
  EXPECT_EQ(a.links_pruned, b.links_pruned);
  EXPECT_EQ(a.peak_members, b.peak_members);
  EXPECT_EQ(a.peak_links, b.peak_links);
}

void expect_equal(const churn_metrics& a, const churn_metrics& b) {
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.time_avg_links, b.time_avg_links);
  EXPECT_EQ(a.time_avg_cost, b.time_avg_cost);
  EXPECT_EQ(a.time_avg_members, b.time_avg_members);
  EXPECT_EQ(a.peak_members, b.peak_members);
  EXPECT_EQ(a.peak_links, b.peak_links);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.links_grafted, b.links_grafted);
  EXPECT_EQ(a.links_pruned, b.links_pruned);
  EXPECT_EQ(a.mean_lifetime, b.mean_lifetime);
  EXPECT_EQ(a.lifetime_histogram, b.lifetime_histogram);
}

TEST(group_manager, create_join_leave_bookkeeping) {
  group_manager groups;
  const group_snapshot created = groups.create("s", "g", kary(), {});
  EXPECT_EQ(created.mode, group_mode::source);
  EXPECT_EQ(created.root, 0u);
  EXPECT_EQ(created.generation, 0u);
  EXPECT_EQ(created.members, 0u);
  EXPECT_EQ(created.links, 0u);

  const group_snapshot joined = groups.join("s", "g", 7);
  EXPECT_EQ(joined.generation, 1u);
  EXPECT_EQ(joined.members, 1u);
  EXPECT_EQ(joined.sites, 1u);
  EXPECT_EQ(joined.links, 3u);  // path 0-1-3-7
  EXPECT_EQ(joined.last_grafted, 3u);
  EXPECT_EQ(joined.joins, 1u);
  EXPECT_EQ(joined.links_grafted, 3u);
  EXPECT_EQ(joined.peak_links, 3u);

  const group_snapshot sibling = groups.join("s", "g", 8);
  EXPECT_EQ(sibling.links, 4u);
  EXPECT_EQ(sibling.last_grafted, 1u);

  const group_snapshot left = groups.leave("s", "g", 7);
  EXPECT_EQ(left.generation, 3u);
  EXPECT_EQ(left.members, 1u);
  EXPECT_EQ(left.links, 3u);
  EXPECT_EQ(left.last_pruned, 1u);
  EXPECT_EQ(left.leaves, 1u);
  EXPECT_EQ(left.peak_links, 4u);  // peak survives the prune

  const group_snapshot read = groups.stats("s", "g");
  EXPECT_EQ(read.last_grafted, 0u);  // reads report no per-op delta
  EXPECT_EQ(read.last_pruned, 0u);
  EXPECT_EQ(read.links, 3u);
}

TEST(group_manager, join_count_batches_instances) {
  group_manager groups;
  groups.create("s", "g", kary(), {});
  const group_snapshot snap = groups.join("s", "g", 9, 3);
  EXPECT_EQ(snap.members, 3u);
  EXPECT_EQ(snap.sites, 1u);
  EXPECT_EQ(snap.joins, 3u);
  EXPECT_EQ(snap.last_grafted, 3u);  // first instance grafts the path
  EXPECT_THROW(groups.leave("s", "g", 9, 4), std::invalid_argument);
  const group_snapshot drained = groups.leave("s", "g", 9, 3);
  EXPECT_EQ(drained.members, 0u);
  EXPECT_EQ(drained.links, 0u);
  EXPECT_EQ(drained.last_pruned, 3u);
}

TEST(group_manager, shared_mode_places_core_deterministically) {
  const auto g = waxman();
  group_config config;
  config.mode = group_mode::shared;
  config.core = core_strategy::degree_center;
  config.core_seed = 11;

  group_manager a;
  group_manager b;
  const group_snapshot sa = a.create("s", "g", g, config);
  const group_snapshot sb = b.create("s", "g", g, config);
  EXPECT_EQ(sa.mode, group_mode::shared);
  EXPECT_EQ(sa.root, sb.root);

  rng gen(config.core_seed);
  EXPECT_EQ(sa.root, choose_core(*g, config.core, gen, config.core_probes));
}

TEST(group_manager, weighted_groups_report_cost) {
  const auto g = kary();
  edge_weights w(*g);
  w.assign([](node_id a, node_id b) {
    return 1.0 + 0.25 * static_cast<double>(a + b);
  });
  group_config config;
  config.weights = &w;
  group_manager groups;
  groups.create("s", "g", g, config);
  const group_snapshot snap = groups.join("s", "g", 7);
  EXPECT_DOUBLE_EQ(snap.cost, w.get(0, 1) + w.get(1, 3) + w.get(3, 7));

  // Unweighted groups report cost == links.
  groups.create("s", "hop", g, {});
  const group_snapshot hop = groups.join("s", "hop", 7);
  EXPECT_DOUBLE_EQ(hop.cost, static_cast<double>(hop.links));
}

TEST(group_manager, precondition_errors) {
  group_manager groups;
  const auto g = kary();
  groups.create("s", "g", g, {});
  EXPECT_THROW(groups.create("s", "g", g, {}), std::invalid_argument);
  EXPECT_THROW(groups.create("s", "", g, {}), std::invalid_argument);
  group_config bad_root;
  bad_root.root = g->node_count();
  EXPECT_THROW(groups.create("s", "r", g, bad_root), std::out_of_range);
  EXPECT_THROW(groups.join("s", "nope", 1), std::invalid_argument);
  EXPECT_THROW(groups.leave("s", "nope", 1), std::invalid_argument);
  EXPECT_THROW(groups.stats("s", "nope"), std::invalid_argument);
  EXPECT_THROW(groups.leave("s", "g", 1), std::invalid_argument);
  EXPECT_THROW(groups.join("s", "g", g->node_count()), std::out_of_range);
}

TEST(group_manager, list_sorted_and_erase) {
  group_manager groups;
  const auto g = kary();
  groups.create("b", "y", g, {});
  groups.create("a", "z", g, {});
  groups.create("b", "x", g, {});
  const std::vector<group_snapshot> all = groups.list();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].scope, "a");
  EXPECT_EQ(all[1].name, "x");
  EXPECT_EQ(all[2].name, "y");
  EXPECT_TRUE(groups.contains("a", "z"));
  EXPECT_TRUE(groups.erase("a", "z"));
  EXPECT_FALSE(groups.erase("a", "z"));
  EXPECT_FALSE(groups.contains("a", "z"));
  EXPECT_EQ(groups.size(), 2u);
}

TEST(group_manager, rebase_keeps_counters_and_skips_graft_accounting) {
  group_manager groups;
  const auto g = waxman();
  groups.create("s", "g", g, {});
  groups.join("s", "g", 17);
  groups.join("s", "g", 3);
  const group_snapshot before = groups.stats("s", "g");

  // Re-converge onto a different root, as the repair path would: a fresh
  // routing base plus a rebuilt tree with the same receivers re-attached.
  auto routing = std::make_shared<const source_tree>(*g, 9);
  auto delivery = std::make_unique<dynamic_delivery_tree>(*routing);
  delivery->join(17);
  delivery->join(3);
  const std::size_t rebuilt_links = delivery->link_count();
  const group_snapshot after =
      groups.rebase("s", "g", routing, std::move(delivery));

  EXPECT_EQ(after.root, 9u);
  EXPECT_EQ(after.generation, before.generation + 1);
  EXPECT_EQ(after.links, rebuilt_links);
  EXPECT_EQ(after.members, before.members);
  // Convergence churn is not membership churn: graft/prune totals and the
  // join/leave counts carry over untouched.
  EXPECT_EQ(after.joins, before.joins);
  EXPECT_EQ(after.links_grafted, before.links_grafted);
  EXPECT_EQ(after.links_pruned, before.links_pruned);
}

TEST(group_churn, poisson_run_is_deterministic) {
  const auto g = waxman();
  churn_workload w;
  w.join_rate = 4.0;
  w.mean_lifetime = 3.0;
  w.horizon = 50.0;
  w.warmup = 5.0;

  group_manager a;
  a.create("s", "g", g, {});
  const churn_metrics ma = run_poisson_churn(a, "s", "g", w, 99);
  group_manager b;
  b.create("s", "g", g, {});
  const churn_metrics mb = run_poisson_churn(b, "s", "g", w, 99);

  expect_equal(ma, mb);
  expect_equal(a.stats("s", "g"), b.stats("s", "g"));
  EXPECT_GT(ma.joins, 0u);
  EXPECT_GT(ma.time_avg_links, 0.0);
  // M/M/∞: stationary mean size is join_rate * mean_lifetime = 12; a
  // 50-unit window stays in the right neighborhood.
  EXPECT_GT(ma.time_avg_members, 4.0);
  EXPECT_LT(ma.time_avg_members, 30.0);
}

TEST(group_churn, trace_replay_matches_live_run) {
  const auto g = waxman();
  churn_workload w;
  w.join_rate = 3.0;
  w.mean_lifetime = 4.0;
  w.horizon = 40.0;
  w.warmup = 8.0;

  group_manager live;
  live.create("s", "g", g, {});
  std::vector<membership_event> trace;
  const churn_metrics live_metrics =
      run_poisson_churn(live, "s", "g", w, 123, &trace);
  ASSERT_FALSE(trace.empty());

  group_manager replayed;
  replayed.create("s", "g", g, {});
  const churn_metrics replay_metrics =
      replay_membership(replayed, "s", "g", trace, w.horizon, w.warmup);

  expect_equal(live_metrics, replay_metrics);
  expect_equal(live.stats("s", "g"), replayed.stats("s", "g"));
}

TEST(group_churn, requires_existing_empty_group) {
  const auto g = kary();
  group_manager groups;
  churn_workload w;
  EXPECT_THROW(run_poisson_churn(groups, "s", "missing", w, 1),
               std::invalid_argument);
  groups.create("s", "g", g, {});
  groups.join("s", "g", 7);
  EXPECT_THROW(run_poisson_churn(groups, "s", "g", w, 1),
               std::invalid_argument);
}

TEST(group_manager, concurrent_disjoint_groups_match_serial_replay) {
  const auto g = waxman();
  churn_workload w;
  w.join_rate = 2.0;
  w.mean_lifetime = 3.0;
  w.horizon = 25.0;

  constexpr std::size_t n_threads = 8;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n_threads; ++i) {
    // Built via += rather than operator+ to sidestep a GCC 12 -Wrestrict
    // false positive (PR105329) that -Werror builds would trip on.
    std::string name = "g";
    name += std::to_string(i);
    names.push_back(name);
  }
  group_manager concurrent;
  for (std::size_t i = 0; i < n_threads; ++i) {
    concurrent.create("s", names[i], g, {});
  }
  std::vector<churn_metrics> concurrent_metrics(n_threads);
  {
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) {
      threads.emplace_back([&, i] {
        concurrent_metrics[i] =
            run_poisson_churn(concurrent, "s", names[i], w, 1000 + i);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  group_manager serial;
  for (std::size_t i = 0; i < n_threads; ++i) {
    serial.create("s", names[i], g, {});
    const churn_metrics m =
        run_poisson_churn(serial, "s", names[i], w, 1000 + i);
    expect_equal(concurrent_metrics[i], m);
  }

  const std::vector<group_snapshot> ca = concurrent.list();
  const std::vector<group_snapshot> cs = serial.list();
  ASSERT_EQ(ca.size(), cs.size());
  for (std::size_t i = 0; i < ca.size(); ++i) expect_equal(ca[i], cs[i]);
}

}  // namespace
}  // namespace mcast
