// Robustness guards of the line server (docs/resilience.md):
//   * a 100 MB request line cannot balloon server memory — the reader
//     refuses within a bounded number of bytes, answers the typed
//     limit_exceeded error, and closes;
//   * a slow-loris client (bytes trickling, newline never arriving) is
//     cut at line_deadline_ms with the typed deadline error;
//   * a connected-but-not-reading client cannot pin a worker: response
//     writes give up at write_deadline_ms and the close is counted;
//   * both deadline closes land in server_stats and the obs registry.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"

namespace mcast::net {
namespace {

constexpr int kReadTimeoutMs = 20000;

server_config robust_config() {
  server_config config;
  config.port = 0;
  config.workers = 2;
  config.queue_capacity = 8;
  config.overload_response = service::error_response(
      service::error_code::overloaded, "connection queue full");
  config.overlong_response = service::error_response(
      service::error_code::limit_exceeded, "request line too long");
  config.internal_error_response = service::error_response(
      service::error_code::internal_error, "handler failed");
  config.deadline_response = service::error_response(
      service::error_code::deadline_exceeded, "deadline exceeded");
  return config;
}

std::shared_ptr<service::query_service> shared_service() {
  return std::make_shared<service::query_service>();
}

TEST(net_robustness, hundred_mb_line_is_refused_within_bounded_bytes) {
  server_config config = robust_config();
  config.max_line_bytes = 4096;
  auto svc = shared_service();
  line_server server(config, [svc](const std::string& line) {
    return svc->handle(line);
  });

  // A writer pushes toward 100 MB without ever sending a newline. The
  // server must answer limit_exceeded and close long before the payload
  // completes, so the writer's sends start failing after roughly
  // max_line_bytes + the kernel's socket buffers — nowhere near 100 MB.
  unique_fd conn = connect_loopback(server.port());
  const std::size_t target = 100u << 20;
  const std::string chunk(256u << 10, 'a');
  std::size_t sent = 0;
  std::string response;
  line_reader reader(conn.get(), 1 << 16);
  bool got_response = false;
  while (sent < target) {
    const ssize_t n =
        ::send(conn.get(), chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n <= 0) break;  // the server closed on us — the guard fired
    sent += static_cast<std::size_t>(n);
    // Drain the typed response as soon as it appears so the server's
    // close is a clean FIN from our side of the buffer.
    if (!got_response &&
        reader.read_line(response, 0) == line_reader::status::line) {
      got_response = true;
      EXPECT_NE(response.find("limit_exceeded"), std::string::npos)
          << response;
    }
  }
  EXPECT_LT(sent, 64u << 20) << "server kept reading an unbounded line";
  if (!got_response &&
      reader.read_line(response, kReadTimeoutMs) == line_reader::status::line) {
    got_response = true;
    EXPECT_NE(response.find("limit_exceeded"), std::string::npos) << response;
  }
  // The response races the RST from closing with unread bytes in flight;
  // refusing within bounded bytes is the hard guarantee, the typed line
  // is best-effort under that race. Either way the server stays healthy:
  EXPECT_EQ(server.stats().requests, 0u);
}

TEST(net_robustness, slow_loris_partial_line_is_cut_with_typed_error) {
  server_config config = robust_config();
  config.idle_poll_ms = 20;
  config.line_deadline_ms = 200;
  auto svc = shared_service();
  line_server server(config, [svc](const std::string& line) {
    return svc->handle(line);
  });

  unique_fd conn = connect_loopback(server.port());
  // Trickle a byte every 40 ms: each poll tick sees fresh bytes, so only
  // the partial-line age guard can end this.
  std::thread trickler([&] {
    const std::string prefix = "{\"op\":\"healthz\"";
    for (const char c : prefix) {
      if (::send(conn.get(), &c, 1, MSG_NOSIGNAL) != 1) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });

  line_reader reader(conn.get(), 1 << 16);
  std::string line;
  const auto begun = std::chrono::steady_clock::now();
  ASSERT_EQ(reader.read_line(line, kReadTimeoutMs), line_reader::status::line);
  const auto elapsed = std::chrono::steady_clock::now() - begun;
  EXPECT_NE(line.find("deadline_exceeded"), std::string::npos) << line;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  trickler.join();

  const line_reader::status st = reader.read_line(line, kReadTimeoutMs);
  EXPECT_TRUE(st == line_reader::status::closed ||
              st == line_reader::status::error)
      << static_cast<int>(st);
  EXPECT_GE(server.stats().deadline_closes, 1u);
}

TEST(net_robustness, idle_connection_without_partial_line_survives) {
  server_config config = robust_config();
  config.idle_poll_ms = 20;
  config.line_deadline_ms = 150;
  auto svc = shared_service();
  line_server server(config, [svc](const std::string& line) {
    return svc->handle(line);
  });

  // Idle (no bytes at all) is keep-alive, not slow-loris: after sitting
  // past the line deadline, a complete request must still be served.
  unique_fd conn = connect_loopback(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_TRUE(send_all(conn.get(), "{\"op\":\"healthz\"}\n"));
  line_reader reader(conn.get(), 1 << 16);
  std::string line;
  ASSERT_EQ(reader.read_line(line, kReadTimeoutMs), line_reader::status::line);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_EQ(server.stats().deadline_closes, 0u);
}

TEST(net_robustness, stalled_reader_cannot_pin_a_worker) {
  server_config config = robust_config();
  config.workers = 1;
  config.write_deadline_ms = 300;
  // "gimme" answers with a payload that dwarfs the loopback socket
  // buffers, so the write must block until the client reads — which the
  // stalled client never does. Everything else gets a tiny response.
  const std::string huge(48u << 20, 'x');
  line_server server(config, [&huge](const std::string& line) {
    return line == "gimme" ? huge : std::string("hi");
  });

  unique_fd stalled = connect_loopback(server.port());
  ASSERT_TRUE(send_all(stalled.get(), "gimme\n"));
  // Never read. The single worker must abandon this connection within
  // write_deadline_ms instead of blocking forever.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(15);
  while (server.stats().deadline_closes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().deadline_closes, 1u);

  // The worker is free again: a well-behaved client on the same server
  // gets served.
  unique_fd polite = connect_loopback(server.port());
  ASSERT_TRUE(send_all(polite.get(), "hello\n"));
  line_reader reader(polite.get(), 1 << 16);
  std::string line;
  ASSERT_EQ(reader.read_line(line, kReadTimeoutMs), line_reader::status::line)
      << "worker never came back";
  EXPECT_EQ(line, "hi");
}

}  // namespace
}  // namespace mcast::net
