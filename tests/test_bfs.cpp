// BFS: distances, parents, unreachable handling, randomized tie-breaking.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "sim/rng.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(bfs, path_distances) {
  const graph g = make_path(5);
  const bfs_tree t = bfs_from(g, 0);
  for (node_id v = 0; v < 5; ++v) EXPECT_EQ(t.dist[v], v);
  EXPECT_EQ(t.parent[0], invalid_node);
  for (node_id v = 1; v < 5; ++v) EXPECT_EQ(t.parent[v], v - 1);
}

TEST(bfs, ring_distances_wrap) {
  const graph g = make_ring(6);
  const bfs_tree t = bfs_from(g, 0);
  EXPECT_EQ(t.dist[1], 1u);
  EXPECT_EQ(t.dist[5], 1u);
  EXPECT_EQ(t.dist[2], 2u);
  EXPECT_EQ(t.dist[4], 2u);
  EXPECT_EQ(t.dist[3], 3u);
  EXPECT_EQ(t.eccentricity(), 3u);
}

TEST(bfs, parents_form_shortest_path_tree) {
  const graph g = make_grid(4, 5);
  const bfs_tree t = bfs_from(g, 7);
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (v == t.source) continue;
    ASSERT_NE(t.parent[v], invalid_node);
    EXPECT_EQ(t.dist[v], t.dist[t.parent[v]] + 1);
    EXPECT_TRUE(g.has_edge(v, t.parent[v]));
  }
}

TEST(bfs, deterministic_parent_is_lowest_id_predecessor) {
  const graph g = make_ring(4);  // node 2 reachable via 1 and 3
  const bfs_tree t = bfs_from(g, 0);
  EXPECT_EQ(t.parent[2], 1u);  // lowest-id rule
}

TEST(bfs, unreachable_component) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph g = b.build();
  const bfs_tree t = bfs_from(g, 0);
  EXPECT_EQ(t.dist[1], 1u);
  EXPECT_EQ(t.dist[2], unreachable);
  EXPECT_EQ(t.dist[3], unreachable);
  EXPECT_EQ(t.parent[2], invalid_node);
  EXPECT_EQ(t.reached_count(), 2u);
  EXPECT_EQ(t.eccentricity(), 1u);
}

TEST(bfs, distances_only_matches_full) {
  const graph g = make_grid(6, 7);
  const bfs_tree t = bfs_from(g, 0);
  const std::vector<hop_count> d = bfs_distances(g, 0);
  EXPECT_EQ(t.dist, d);
}

TEST(bfs, bad_source_throws) {
  const graph g = make_path(3);
  EXPECT_THROW(bfs_from(g, 3), std::out_of_range);
  EXPECT_THROW(bfs_distances(g, 99), std::out_of_range);
}

TEST(bfs, grid_distance_is_manhattan) {
  const graph g = make_grid(5, 5);
  const std::vector<hop_count> d = bfs_distances(g, 0);  // corner (0,0)
  for (node_id r = 0; r < 5; ++r) {
    for (node_id c = 0; c < 5; ++c) {
      EXPECT_EQ(d[r * 5 + c], r + c);
    }
  }
}

TEST(bfs, randomized_parents_preserve_distances) {
  const graph g = make_grid(5, 5);
  rng gen(42);
  const bfs_tree base = bfs_from(g, 12);
  const bfs_tree t = bfs_from_random_parents(
      g, 12, [&gen](std::uint32_t k) { return gen.below(k); });
  EXPECT_EQ(t.dist, base.dist);
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (v == t.source) continue;
    EXPECT_EQ(t.dist[v], t.dist[t.parent[v]] + 1)
        << "random parent must stay on a shortest path";
    EXPECT_TRUE(g.has_edge(v, t.parent[v]));
  }
}

TEST(bfs, randomized_parents_actually_vary) {
  const graph g = make_grid(6, 6);
  rng gen(7);
  auto pick = [&gen](std::uint32_t k) { return gen.below(k); };
  const bfs_tree t1 = bfs_from_random_parents(g, 0, pick);
  bool saw_difference = false;
  for (int trial = 0; trial < 20 && !saw_difference; ++trial) {
    const bfs_tree t2 = bfs_from_random_parents(g, 0, pick);
    saw_difference = t2.parent != t1.parent;
  }
  EXPECT_TRUE(saw_difference) << "tie-breaking never chose another parent";
}

}  // namespace
}  // namespace mcast
