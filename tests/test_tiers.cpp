// TIERS generator: tier accounting, connectivity, the sub-exponential
// reachability character the paper attributes to ti5000.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/reachability.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "topo/power_law.hpp"
#include "topo/tiers.hpp"

namespace mcast {
namespace {

TEST(tiers, node_count_formula) {
  tiers_params p;
  p.wan_size = 10;
  p.man_count = 3;
  p.man_size = 5;
  p.lans_per_man = 2;
  p.lan_size = 4;
  // 10 + 15 + 3*2*4 = 49.
  EXPECT_EQ(tiers_node_count(p), 49u);
  EXPECT_EQ(make_tiers(p, 1).node_count(), 49u);
}

TEST(tiers, connected_by_construction) {
  tiers_params p;
  p.wan_size = 20;
  p.man_count = 4;
  p.man_size = 8;
  p.lans_per_man = 3;
  p.lan_size = 5;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(is_connected(make_tiers(p, seed))) << "seed " << seed;
  }
}

TEST(tiers, deterministic_given_seed) {
  const tiers_params p = ti5000_params();
  const graph a = make_tiers(p, 9);
  const graph b = make_tiers(p, 9);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(tiers, ti5000_matches_paper_character) {
  const graph g = make_tiers(ti5000_params(), 3);
  EXPECT_EQ(g.node_count(), 5000u);
  EXPECT_TRUE(is_connected(g));
  const degree_stats deg = compute_degree_stats(g);
  // TIERS maps are sparse: most nodes are degree-1 LAN hosts.
  EXPECT_LT(deg.mean, 3.0);
  EXPECT_GE(deg.histogram[1], 3000u);
  EXPECT_EQ(g.name(), "ti5000");
}

TEST(tiers, redundancy_increases_wan_density) {
  tiers_params lo = ti5000_params(), hi = ti5000_params();
  lo.wan_redundancy = 1;
  hi.wan_redundancy = 3;
  EXPECT_GT(make_tiers(hi, 4).edge_count(), make_tiers(lo, 4).edge_count());
}

TEST(tiers, reachability_grows_slower_than_power_law_graph) {
  // The paper's Fig 7 dichotomy: ti5000's T(r) is sub-exponential while a
  // power-law graph's is exponential until saturation. Compare the
  // exponential-fit quality (R² of ln T(r) vs r).
  const graph ti = make_tiers(ti5000_params(), 3);
  barabasi_albert_params bap;
  bap.nodes = 5000;
  const graph ba = make_barabasi_albert(bap, 3);
  rng gen(5);
  const auto ti_fit = fit_reachability_growth(mean_reachability(ti, 16, gen));
  const auto ba_fit = fit_reachability_growth(mean_reachability(ba, 16, gen));
  EXPECT_GT(ba_fit.r_squared, ti_fit.r_squared)
      << "TIERS should look less exponential than BA";
}

TEST(tiers, lan_only_configuration) {
  tiers_params p;
  p.wan_size = 4;
  p.man_count = 0;
  p.man_size = 1;
  p.lans_per_man = 0;
  p.lan_size = 1;
  const graph g = make_tiers(p, 1);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(tiers, invalid_parameters_throw) {
  tiers_params p;
  p.wan_size = 0;
  EXPECT_THROW(make_tiers(p, 1), std::invalid_argument);
  p = tiers_params{};
  p.wan_redundancy = 0;
  EXPECT_THROW(make_tiers(p, 1), std::invalid_argument);
  p = tiers_params{};
  p.man_wan_redundancy = 0;
  EXPECT_THROW(make_tiers(p, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
