// Discrete-event core: ordering, cancellation, horizons.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"

namespace mcast {
namespace {

TEST(event_queue, fires_in_time_order) {
  event_queue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_until(10.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(event_queue, ties_fire_in_schedule_order) {
  event_queue q;
  std::vector<int> order;
  q.schedule(5.0, [&] { order.push_back(1); });
  q.schedule(5.0, [&] { order.push_back(2); });
  q.schedule(5.0, [&] { order.push_back(3); });
  q.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(event_queue, horizon_stops_late_events) {
  event_queue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(7.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.run_until(10.0), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(event_queue, cancellation) {
  event_queue q;
  int fired = 0;
  const auto id = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id)) << "double-cancel is a no-op";
  EXPECT_FALSE(q.cancel(999));
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(event_queue, events_can_schedule_events) {
  event_queue q;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(q.now());
    if (times.size() < 4) q.schedule(q.now() + 1.5, tick);
  };
  q.schedule(1.0, tick);
  q.run_until(100.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[3], 5.5);
}

TEST(event_queue, step_api) {
  event_queue q;
  int fired = 0;
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_FALSE(q.step());
}

TEST(event_queue, validation) {
  event_queue q;
  q.schedule(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.run_until(4.0), std::invalid_argument);
  EXPECT_THROW(q.schedule(6.0, event_queue::handler{}), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
