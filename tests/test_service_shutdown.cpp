// Graceful-shutdown contract for `mcast_lab serve`, tested against the
// real binary: SIGTERM (and SIGINT) make a serving process drain and exit
// 0 — not die on the signal — and a request answered moments before the
// signal is never lost. MCAST_LAB_BIN is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "proc_util.hpp"

namespace mcast::service {
namespace {

using testproc::finish;
using testproc::read_until;
using testproc::run_result;
using testproc::spawn;
using testproc::spawned;

std::uint16_t parse_port(const std::string& banner) {
  const std::string key = "listening on 127.0.0.1:";
  const std::size_t at = banner.find(key);
  if (at == std::string::npos) return 0;
  return static_cast<std::uint16_t>(
      std::strtoul(banner.c_str() + at + key.size(), nullptr, 10));
}

/// Starts `mcast_lab serve --port=0`, waits for the listening banner, and
/// returns the process plus its bound port.
spawned start_server(std::uint16_t& port,
                     const std::vector<std::string>& extra = {}) {
  std::vector<std::string> argv = {"serve", "--port=0", "--threads=2",
                                   "--queue=8"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  const spawned s = spawn(MCAST_LAB_BIN, argv);
  EXPECT_GT(s.pid, 0);
  const std::string banner = read_until(s.stderr_fd, "listening on",
                                        std::chrono::milliseconds(15000));
  port = parse_port(banner);
  EXPECT_NE(port, 0) << "no listening banner; stderr so far: " << banner;
  return s;
}

std::string query_once(std::uint16_t port, const std::string& request) {
  net::unique_fd conn = net::connect_loopback(port);
  if (!net::send_all(conn.get(), request + "\n")) return "";
  net::line_reader reader(conn.get(), 1 << 20);
  std::string line;
  if (reader.read_line(line, 30000) != net::line_reader::status::line) {
    return "";
  }
  return line;
}

void shutdown_contract(int sig) {
  std::uint16_t port = 0;
  const spawned server = start_server(port);
  ASSERT_NE(port, 0);

  const std::string response =
      query_once(port, "{\"op\":\"lmhat\",\"k\":3,\"depth\":4,\"n\":7}");
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

  ASSERT_EQ(::kill(server.pid, sig), 0);
  const run_result r = finish(server);
  EXPECT_EQ(r.term_signal, 0)
      << "server was killed by the signal instead of draining";
  EXPECT_EQ(r.exit_code, 0) << "stderr:\n" << r.err;
  EXPECT_NE(r.err.find("draining"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("drained"), std::string::npos) << r.err;
}

TEST(service_shutdown, sigterm_drains_and_exits_zero) {
  shutdown_contract(SIGTERM);
}

TEST(service_shutdown, sigint_drains_and_exits_zero) {
  shutdown_contract(SIGINT);
}

TEST(service_shutdown, drain_deadline_force_closes_stragglers) {
  std::uint16_t port = 0;
  const spawned server = start_server(port, {"--drain-ms=300"});
  ASSERT_NE(port, 0);

  // Park a connection mid-request: a partial line whose bytes keep
  // trickling, so neither idleness nor the line deadline ends it — only
  // the drain deadline can.
  net::unique_fd conn = net::connect_loopback(port);
  ASSERT_TRUE(net::send_all(conn.get(), "{\"op\":\"healthz\""));
  std::atomic<bool> stop{false};
  std::thread trickler([&] {
    while (!stop.load()) {
      if (!net::send_all(conn.get(), "x")) return;  // server cut us off
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  // Let a worker pick the connection up before the signal lands.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto begun = std::chrono::steady_clock::now();
  ASSERT_EQ(::kill(server.pid, SIGTERM), 0);
  const run_result r = finish(server);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - begun)
                           .count();
  stop.store(true);
  trickler.join();

  EXPECT_EQ(r.term_signal, 0) << "killed by the signal instead of draining";
  EXPECT_EQ(r.exit_code, 0) << "stderr:\n" << r.err;
  EXPECT_LT(wall_ms, 10000) << "the drain deadline did not bound shutdown";
  EXPECT_NE(r.err.find("force-closed"), std::string::npos) << r.err;
  EXPECT_EQ(r.err.find(" 0 force-closed"), std::string::npos)
      << "expected at least one forced close:\n" << r.err;
}

TEST(service_shutdown, refuses_new_connections_after_drain) {
  std::uint16_t port = 0;
  const spawned server = start_server(port);
  ASSERT_NE(port, 0);
  ASSERT_EQ(::kill(server.pid, SIGTERM), 0);
  const run_result r = finish(server);
  ASSERT_EQ(r.exit_code, 0) << r.err;
  // The port is released: a fresh connect must fail.
  EXPECT_THROW((void)net::connect_loopback(port), std::runtime_error);
}

}  // namespace
}  // namespace mcast::service
