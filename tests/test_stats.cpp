// running_stats: Welford accumulation, merging, edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.hpp"
#include "sim/rng.hpp"

namespace mcast {
namespace {

TEST(stats, empty_accumulator) {
  running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(stats, single_value) {
  running_stats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(stats, known_values) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stderr_mean(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
}

TEST(stats, merge_equals_sequential) {
  rng gen(3);
  running_stats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = gen.uniform() * 10.0 - 3.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(stats, merge_with_empty) {
  running_stats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(stats, numerical_stability_with_large_offset) {
  running_stats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(stats, helpers) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(variance_of({5.0}), 0.0);
  EXPECT_NEAR(variance_of({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(stats, confidence_halfwidth) {
  running_stats s;
  for (int i = 0; i < 100; ++i) s.add(i % 2 ? 1.0 : -1.0);
  EXPECT_NEAR(confidence_halfwidth95(s), 1.96 * s.stderr_mean(), 1e-15);
}

}  // namespace
}  // namespace mcast
