// Differential suite locking down the hot-path machinery of the workspace
// + spt_cache layer: every reusable-scratch code path must be bit-identical
// to an independent in-test reference implementation AND to the one-shot
// public APIs, across the (scaled) paper topology catalog, randomized
// seeds, repeated interleaved sources, degraded views and cache
// hit/miss/eviction histories. Nothing here is statistical — every
// comparison is exact (==, including doubles).
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "fault/degraded.hpp"
#include "fault/failure_model.hpp"
#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/weights.hpp"
#include "graph/workspace.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "multicast/spt.hpp"
#include "multicast/spt_cache.hpp"
#include "sim/rng.hpp"
#include "topo/catalog.hpp"
#include "topo/kary.hpp"
#include "topo/transit_stub.hpp"

namespace mcast {
namespace {

using edge_ok = std::function<bool(node_id, node_id)>;

const edge_ok accept_all = [](node_id, node_id) { return true; };

// Independent reference BFS: plain queue, neighbors in adjacency (== id)
// order, marked-on-enqueue. Deliberately shares no code with the library.
bfs_tree ref_bfs(const graph& g, node_id source, const edge_ok& ok,
                 bool source_alive = true) {
  bfs_tree t;
  t.source = source;
  t.dist.assign(g.node_count(), unreachable);
  t.parent.assign(g.node_count(), invalid_node);
  if (!source_alive) return t;
  std::queue<node_id> q;
  t.dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const node_id v = q.front();
    q.pop();
    for (node_id w : g.neighbors(v)) {
      if (!ok(v, w)) continue;
      if (t.dist[w] == unreachable) {
        t.dist[w] = t.dist[v] + 1;
        t.parent[w] = v;
        q.push(w);
      }
    }
  }
  return t;
}

// Independent reference Dijkstra: textbook lazy-deletion priority_queue,
// strictly-better relaxation (ties keep the first parent).
weighted_tree ref_dijkstra(const graph& g, const edge_weights& weights,
                           node_id source, const edge_ok& ok,
                           bool source_alive = true) {
  weighted_tree t;
  t.source = source;
  t.dist.assign(g.node_count(), std::numeric_limits<double>::infinity());
  t.parent.assign(g.node_count(), invalid_node);
  if (!source_alive) return t;
  using entry = std::pair<double, node_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> pq;
  std::vector<char> settled(g.node_count(), 0);
  t.dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (settled[v]) continue;
    settled[v] = 1;
    for (node_id w : g.neighbors(v)) {
      if (!ok(v, w)) continue;
      const double candidate = d + weights.get(v, w);
      if (candidate < t.dist[w]) {
        t.dist[w] = candidate;
        t.parent[w] = v;
        pq.emplace(candidate, w);
      }
    }
  }
  return t;
}

void expect_same_bfs(const bfs_tree& a, const bfs_tree& b) {
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
}

void expect_same_weighted(const weighted_tree& a, const weighted_tree& b) {
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.dist, b.dist);  // exact double equality on purpose
  EXPECT_EQ(a.parent, b.parent);
}

// A ~100-node transit-stub graph: small enough for exhaustive diffing,
// wired enough for equal-cost paths (the tie-breaking cases that matter).
graph small_ts(std::uint64_t seed) {
  transit_stub_params p;
  p.transit_domains = 2;
  p.transit_domain_size = 4;
  p.stubs_per_transit_node = 3;
  p.stub_domain_size = 4;
  return make_transit_stub(p, seed);
}

// Deterministic, non-uniform weights so Dijkstra ties and orderings are
// actually exercised (all-1.0 would degenerate to BFS).
edge_weights varied_weights(const graph& g) {
  edge_weights w(g);
  w.assign([](node_id a, node_id b) {
    return 1.0 + static_cast<double>((a * 31 + b * 7) % 5);
  });
  return w;
}

TEST(workspace_diff, bfs_matches_reference_across_catalog) {
  traversal_workspace ws;  // one workspace across every network: rebinding
  bfs_tree out;            // to new sizes must not leak state
  for (const network_entry& entry : scaled_networks(paper_networks(), 400)) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      const graph g = entry.build(seed);
      rng gen(seed * 101 + 7);
      std::vector<node_id> sources;
      for (int i = 0; i < 4; ++i) {
        sources.push_back(static_cast<node_id>(gen.below(g.node_count())));
      }
      sources.push_back(sources.front());  // repeated source, interleaved
      for (node_id s : sources) {
        const bfs_tree expected = ref_bfs(g, s, accept_all);
        expect_same_bfs(expected, bfs_from(g, s));  // one-shot wrapper
        expect_same_bfs(expected, bfs_from(g, s, ws, out));

        const traversal_result view = ws.run_bfs(g, s);
        ASSERT_EQ(view.source(), s);
        ASSERT_FALSE(view.visit_order().empty());
        EXPECT_EQ(view.visit_order().front(), s);
        EXPECT_EQ(view.reached_count(), expected.reached_count());
        for (node_id v = 0; v < g.node_count(); ++v) {
          EXPECT_EQ(view.dist(v), expected.dist[v]);
          EXPECT_EQ(view.parent(v), expected.parent[v]);
          EXPECT_EQ(view.reached(v), expected.dist[v] != unreachable);
        }

        std::vector<hop_count> dist_out;
        EXPECT_EQ(bfs_distances(g, s, ws, dist_out), expected.dist);
        EXPECT_EQ(bfs_distances(g, s), expected.dist);
      }
    }
  }
}

TEST(workspace_diff, dijkstra_matches_reference_across_catalog) {
  traversal_workspace ws;
  weighted_tree out;
  for (const network_entry& entry : scaled_networks(paper_networks(), 300)) {
    const graph g = entry.build(3);
    const edge_weights weights = varied_weights(g);
    rng gen(17);
    for (int i = 0; i < 3; ++i) {
      const node_id s = static_cast<node_id>(gen.below(g.node_count()));
      const weighted_tree expected = ref_dijkstra(g, weights, s, accept_all);
      expect_same_weighted(expected, dijkstra_from(g, weights, s));
      expect_same_weighted(expected, dijkstra_from(g, weights, s, ws, out));
    }
  }
}

TEST(workspace_diff, interleaved_graphs_share_one_workspace) {
  // Alternating passes over graphs of different sizes through the same
  // workspace: epoch tagging must isolate every pass, and the scratch must
  // stop growing once it has seen the largest graph.
  const graph g1 = small_ts(5);
  const graph g2 = kary_shape(3, 4).to_graph();
  traversal_workspace ws;
  bfs_tree out;
  rng gen(23);
  for (int round = 0; round < 20; ++round) {
    const graph& g = (round % 2 == 0) ? g1 : g2;
    const node_id s = static_cast<node_id>(gen.below(g.node_count()));
    expect_same_bfs(ref_bfs(g, s, accept_all), bfs_from(g, s, ws, out));
  }
  const std::uint64_t warm_grows = ws.grow_count();
  const std::uint64_t warm_passes = ws.pass_count();
  for (int round = 0; round < 20; ++round) {
    const graph& g = (round % 2 == 0) ? g1 : g2;
    const node_id s = static_cast<node_id>(gen.below(g.node_count()));
    expect_same_bfs(ref_bfs(g, s, accept_all), bfs_from(g, s, ws, out));
  }
  EXPECT_EQ(ws.grow_count(), warm_grows);  // warmed up: zero allocation growth
  EXPECT_EQ(ws.pass_count(), warm_passes + 20);
}

TEST(workspace_diff, degraded_traversals_match_reference) {
  const graph g = small_ts(11);
  const edge_weights weights = varied_weights(g);
  degraded_view view(g);
  view.apply(random_link_failures(g, 0.15, 77));
  const node_id dead = 3;
  view.fail_node(dead);

  const edge_ok masked = [&](node_id a, node_id b) { return view.usable(a, b); };
  traversal_workspace ws;
  bfs_tree bfs_out;
  weighted_tree dij_out;
  rng gen(31);
  for (int i = 0; i < 6; ++i) {
    const node_id s = static_cast<node_id>(gen.below(g.node_count()));
    const bool alive = view.node_alive(s);
    const bfs_tree expected = ref_bfs(g, s, masked, alive);
    expect_same_bfs(expected, bfs_from(view, s));
    expect_same_bfs(expected, bfs_from(view, s, ws, bfs_out));
    EXPECT_EQ(bfs_distances(view, s), expected.dist);

    const weighted_tree wexpected = ref_dijkstra(g, weights, s, masked, alive);
    expect_same_weighted(wexpected, dijkstra_from(view, weights, s));
    expect_same_weighted(wexpected, dijkstra_from(view, weights, s, ws, dij_out));
  }

  // A dead source reaches nothing — including itself.
  const bfs_tree from_dead = bfs_from(view, dead, ws, bfs_out);
  for (node_id v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(from_dead.dist[v], unreachable);
    EXPECT_EQ(from_dead.parent[v], invalid_node);
  }

  // Pristine view == pristine graph, bit for bit.
  view.clear();
  const node_id s = 42 % g.node_count();
  expect_same_bfs(bfs_from(g, s), bfs_from(view, s, ws, bfs_out));
}

TEST(workspace_diff, cached_trees_match_fresh_through_evictions) {
  const graph g = small_ts(2);
  traversal_workspace ws;
  spt_cache cache(4);  // tiny on purpose: force evictions
  rng gen(59);
  // Interleave two hot sources (LRU keeps them resident at capacity 4, so
  // they hit) with cold random ones (which force evictions).
  const node_id hot[2] = {1, 17};
  for (int i = 0; i < 60; ++i) {
    const node_id s = i % 2 == 0
                          ? hot[(i / 2) % 2]
                          : static_cast<node_id>(gen.below(g.node_count()));
    const auto cached = cache.get(g, s, ws);
    ASSERT_NE(cached, nullptr);
    const source_tree fresh(g, s);
    EXPECT_EQ(cached->source(), fresh.source());
    EXPECT_EQ(cached->raw().dist, fresh.raw().dist);
    EXPECT_EQ(cached->raw().parent, fresh.raw().parent);

    // Delivery trees grown on cached vs fresh routing are identical too.
    const auto universe = all_sites_except(g, s);
    rng sampler(1000 + i);
    const auto receivers = sample_distinct(universe, 8, sampler);
    EXPECT_EQ(delivery_tree_links(*cached, receivers),
              delivery_tree_links(fresh, receivers));
  }
  const auto& st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, 60u);
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.evictions, 0u);  // capacity 4 over ~100 sources must evict
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(workspace_diff, cache_invalidates_on_view_generation_change) {
  const graph g = small_ts(4);
  traversal_workspace ws;
  spt_cache cache(16);
  degraded_view view(g);
  const node_id s = 7;

  // Pristine view lookups are generation 0 — the same key space as the
  // pristine-graph overload, and the same trees.
  const auto before = cache.get(view, s, ws);
  EXPECT_EQ(cache.get(g, s, ws), before);  // hit, pointer-identical

  const edge failed = g.edges().front();
  ASSERT_TRUE(view.fail_link(failed.a, failed.b));
  const auto degraded = cache.get(view, s, ws);
  const source_tree fresh_degraded(view.base(), bfs_from(view, s));
  EXPECT_EQ(degraded->raw().dist, fresh_degraded.raw().dist);
  EXPECT_EQ(degraded->raw().parent, fresh_degraded.raw().parent);
  EXPECT_GE(cache.stats().invalidations, 1u);

  // Restoring bumps the generation again: no stale degraded tree may
  // survive, and the fresh result equals the original pristine tree.
  ASSERT_TRUE(view.restore_link(failed.a, failed.b));
  const auto after = cache.get(view, s, ws);
  EXPECT_EQ(after->raw().dist, before->raw().dist);
  EXPECT_EQ(after->raw().parent, before->raw().parent);

  // The evicted/invalidated tree handed out earlier is still alive and
  // readable through its shared_ptr — consumers never dangle.
  EXPECT_EQ(degraded->source(), s);
}

TEST(workspace_diff, into_samplers_match_one_shot_and_restore_pool) {
  const graph g = small_ts(8);
  const auto universe = all_sites_except(g, 0);
  auto pool = universe;
  std::vector<node_id> out;
  rng one_shot_gen(91);
  rng into_gen(91);
  for (int rep = 0; rep < 5; ++rep) {
    for (std::size_t m : {std::size_t{1}, std::size_t{5}, universe.size() / 2,
                          universe.size()}) {
      EXPECT_EQ(sample_distinct(universe, m, one_shot_gen),
                (sample_distinct_into(pool, m, into_gen, out), out));
      EXPECT_EQ(pool, universe);  // undo-swaps restored the pool exactly
      EXPECT_EQ(sample_with_replacement(universe, m, one_shot_gen),
                (sample_with_replacement_into(universe, m, into_gen, out), out));
    }
  }
}

TEST(workspace_diff, workspace_source_tree_ctor_matches_plain) {
  const graph g = small_ts(13);
  traversal_workspace ws;
  rng gen(3);
  for (int i = 0; i < 5; ++i) {
    const node_id s = static_cast<node_id>(gen.below(g.node_count()));
    const source_tree plain(g, s);
    const source_tree via_ws(g, s, ws);
    EXPECT_EQ(plain.raw().dist, via_ws.raw().dist);
    EXPECT_EQ(plain.raw().parent, via_ws.raw().parent);
  }
}

}  // namespace
}  // namespace mcast
