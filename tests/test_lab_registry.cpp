// Registry invariants over the full built-in experiment suite: ids are
// unique and exactly the expected set, every experiment is describable
// (non-empty title/claim, documented params), and every declared default
// survives a round-trip through the `--param k=v` text channel.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "lab/params.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {
namespace {

registry builtin() {
  registry reg;
  register_builtin(reg);
  return reg;
}

TEST(lab_registry, exact_id_set_in_order) {
  const std::vector<std::string> expected = {
      "table1",        "fig1",           "fig2",
      "fig3",          "fig4",           "fig5",
      "fig6",          "fig7",           "fig8",
      "fig9",          "ablation_tiebreak", "ablation_mapping",
      "ablation_mixing", "ablation_ts_degree", "ext_shared_tree",
      "ext_reachability_zoo", "ext_weighted", "ext_sessions",
      "ext_failures",  "ext_churn",
  };
  const registry reg = builtin();
  ASSERT_EQ(reg.all().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(reg.all()[i].id, expected[i]) << "position " << i;
  }
}

TEST(lab_registry, ids_unique_and_findable) {
  const registry reg = builtin();
  std::set<std::string> seen;
  for (const experiment& e : reg.all()) {
    EXPECT_TRUE(seen.insert(e.id).second) << "duplicate id " << e.id;
    const experiment* found = reg.find(e.id);
    ASSERT_NE(found, nullptr) << e.id;
    EXPECT_EQ(found->id, e.id);
  }
  EXPECT_EQ(reg.find("no_such_experiment"), nullptr);
}

TEST(lab_registry, every_experiment_describable) {
  const registry reg = builtin();
  for (const experiment& e : reg.all()) {
    EXPECT_FALSE(e.title.empty()) << e.id;
    EXPECT_FALSE(e.claim.empty()) << e.id;
    EXPECT_TRUE(static_cast<bool>(e.run)) << e.id;
    std::set<std::string> names;
    for (const param_spec& spec : e.params) {
      EXPECT_FALSE(spec.name.empty()) << e.id;
      EXPECT_FALSE(spec.description.empty()) << e.id << "/" << spec.name;
      EXPECT_TRUE(names.insert(spec.name).second)
          << e.id << " duplicate param " << spec.name;
      // Tier defaults must all carry the declared kind.
      for (int scale : {0, 1, 2}) {
        EXPECT_EQ(kind_of(spec.default_for(scale)), spec.kind)
            << e.id << "/" << spec.name << " scale " << scale;
      }
    }
  }
}

// Every default, at every tier, must survive render() -> `--param k=v`
// parsing and come back equal — otherwise a user cannot reproduce a run
// from the values `describe` prints.
TEST(lab_registry, defaults_round_trip_through_param_overrides) {
  const registry reg = builtin();
  for (const experiment& e : reg.all()) {
    for (int scale : {0, 1, 2}) {
      std::vector<std::pair<std::string, std::string>> overrides;
      for (const param_spec& spec : e.params) {
        overrides.emplace_back(spec.name, render(spec.default_for(scale)));
      }
      const param_set plain = resolve_params(e.params, scale, {});
      const param_set routed = resolve_params(e.params, scale, overrides);
      ASSERT_EQ(plain.entries().size(), routed.entries().size()) << e.id;
      for (std::size_t i = 0; i < plain.entries().size(); ++i) {
        EXPECT_EQ(plain.entries()[i], routed.entries()[i])
            << e.id << " scale " << scale << " param "
            << plain.entries()[i].first;
      }
    }
  }
}

TEST(lab_registry, add_rejects_bad_registrations) {
  registry reg;
  experiment ok;
  ok.id = "x";
  ok.run = [](context&) {};
  reg.add(ok);
  EXPECT_THROW(reg.add(ok), std::logic_error);  // duplicate id

  experiment no_id;
  no_id.run = [](context&) {};
  EXPECT_THROW(reg.add(no_id), std::logic_error);

  experiment no_run;
  no_run.id = "y";
  EXPECT_THROW(reg.add(no_run), std::logic_error);
}

}  // namespace
}  // namespace mcast::lab
