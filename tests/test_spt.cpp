// source_tree: distances, parents, paths, wrapping external BFS results.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "multicast/spt.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(spt, basic_queries) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  EXPECT_EQ(t.source(), 0u);
  EXPECT_EQ(t.node_count(), 15u);
  EXPECT_EQ(t.distance(0), 0u);
  EXPECT_EQ(t.distance(7), 3u);
  EXPECT_EQ(t.parent(0), invalid_node);
  EXPECT_EQ(t.parent(7), 3u);
  EXPECT_TRUE(t.spans_graph());
}

TEST(spt, path_to_root_to_leaf) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  const std::vector<node_id> p = t.path_to(9);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[1], 1u);
  EXPECT_EQ(p[2], 4u);
  EXPECT_EQ(p[3], 9u);
}

TEST(spt, path_to_source_is_singleton) {
  const graph g = make_ring(6);
  const source_tree t(g, 2);
  const std::vector<node_id> p = t.path_to(2);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 2u);
}

TEST(spt, disconnected_graph_detected) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph g = b.build();
  const source_tree t(g, 0);
  EXPECT_FALSE(t.spans_graph());
  EXPECT_EQ(t.distance(3), unreachable);
  EXPECT_THROW(t.path_to(3), std::invalid_argument);
}

TEST(spt, wraps_external_bfs_result) {
  const graph g = make_grid(3, 3);
  bfs_tree raw = bfs_from(g, 4);
  const source_tree t(g, std::move(raw));
  EXPECT_EQ(t.source(), 4u);
  EXPECT_EQ(t.distance(0), 2u);
}

TEST(spt, rejects_mismatched_bfs_result) {
  const graph g = make_grid(3, 3);
  const graph other = make_path(4);
  bfs_tree raw = bfs_from(other, 0);
  EXPECT_THROW(source_tree(g, std::move(raw)), std::invalid_argument);
}

TEST(spt, out_of_range_throws) {
  const graph g = make_path(3);
  EXPECT_THROW(source_tree(g, 5), std::out_of_range);
  const source_tree t(g, 0);
  EXPECT_THROW(t.distance(3), std::out_of_range);
  EXPECT_THROW(t.parent(3), std::out_of_range);
  EXPECT_THROW(t.path_to(3), std::out_of_range);
}

}  // namespace
}  // namespace mcast
