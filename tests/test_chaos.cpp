// Determinism contract of the chaos shim (net/chaos.hpp):
//   * the spec grammar parses strictly and round-trips through describe();
//   * fault decisions are pure functions of (seed, conn, op) — the full
//     schedule is byte-identical when recomputed from 8 threads at once;
//   * a serial closed-loop run against a chaos-armed server replays
//     byte-identically: same per-request statuses, same response bytes,
//     same success count, and never a malformed line on a surviving
//     connection.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/chaos.hpp"
#include "net/server.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"

namespace mcast::net {
namespace {

TEST(chaos_spec, default_round_trips_through_describe) {
  const chaos_spec spec = chaos_spec::default_spec();
  const chaos_spec reparsed = chaos_spec::parse(spec.describe());
  EXPECT_EQ(spec.describe(), reparsed.describe());
  EXPECT_EQ(chaos_spec::parse("default").describe(), spec.describe());
}

TEST(chaos_spec, parses_the_full_grammar) {
  const chaos_spec spec = chaos_spec::parse(
      "seed=42,drop=0.1,reset=0.05,delay=0.2:7,truncate=0.1,stall=0.15:11");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.drop, 0.1);
  EXPECT_DOUBLE_EQ(spec.reset, 0.05);
  EXPECT_DOUBLE_EQ(spec.delay, 0.2);
  EXPECT_EQ(spec.delay_ms, 7);
  EXPECT_DOUBLE_EQ(spec.truncate, 0.1);
  EXPECT_DOUBLE_EQ(spec.stall, 0.15);
  EXPECT_EQ(spec.stall_ms, 11);
  EXPECT_EQ(chaos_spec::parse(spec.describe()).describe(), spec.describe());
}

TEST(chaos_spec, rejects_malformed_specs) {
  EXPECT_THROW((void)chaos_spec::parse("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("drop"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("delay=0.1:"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("delay=0.1:ms"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("delay=0.1:99999"),
               std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("drop=0.1:5"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("seed=abc"), std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("drop=0.6,reset=0.6"),
               std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("delay=0.5,truncate=0.3,stall=0.3"),
               std::invalid_argument);
  EXPECT_THROW((void)chaos_spec::parse("drop=0.1,,reset=0.1"),
               std::invalid_argument);
}

TEST(chaos_engine, decisions_are_pure_functions) {
  const chaos_engine engine(chaos_spec::parse(
      "seed=9,drop=0.2,reset=0.2,delay=0.3:3,truncate=0.2,stall=0.2:4"));
  for (std::uint64_t conn = 0; conn < 32; ++conn) {
    const fault_decision a0 = engine.accept_fault(conn);
    const fault_decision a1 = engine.accept_fault(conn);
    EXPECT_EQ(a0.kind, a1.kind);
    for (std::uint64_t op = 0; op < 8; ++op) {
      const fault_decision r0 = engine.read_fault(conn, op);
      const fault_decision r1 = engine.read_fault(conn, op);
      EXPECT_EQ(r0.kind, r1.kind);
      EXPECT_EQ(r0.sleep_ms, r1.sleep_ms);
      const fault_decision w0 = engine.write_fault(conn, op);
      const fault_decision w1 = engine.write_fault(conn, op);
      EXPECT_EQ(w0.kind, w1.kind);
      EXPECT_DOUBLE_EQ(w0.cut_fraction, w1.cut_fraction);
    }
  }
}

TEST(chaos_engine, schedule_is_identical_across_eight_threads) {
  const chaos_engine engine(chaos_spec::parse(
      "seed=31,drop=0.1,reset=0.1,delay=0.2:2,truncate=0.15,stall=0.15:3"));
  const std::vector<std::string> reference = engine.schedule(64, 8);
  ASSERT_FALSE(reference.empty());  // aggressive spec must fire something

  std::vector<std::vector<std::string>> seen(8);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
      threads.emplace_back([&, t] { seen[t] = engine.schedule(64, 8); });
    }
    for (std::thread& th : threads) th.join();
  }
  for (const std::vector<std::string>& trace : seen) {
    EXPECT_EQ(trace, reference);
  }

  // Same spec, separate engine: same schedule. Different seed: different.
  const chaos_engine twin(engine.spec());
  EXPECT_EQ(twin.schedule(64, 8), reference);
  chaos_spec other = engine.spec();
  other.seed = 32;
  EXPECT_NE(chaos_engine(other).schedule(64, 8), reference);
}

TEST(chaos_engine, salts_decorrelate_decision_sites) {
  // At the same coordinates, the accept/read/write draws must not be the
  // same underlying uniform: with p=0.5 everywhere, the three sites
  // should disagree somewhere over 256 connections.
  const chaos_engine engine(
      chaos_spec::parse("seed=3,drop=0.5,delay=0.5:1,truncate=0.5"));
  bool sites_disagree = false;
  for (std::uint64_t conn = 0; conn < 256 && !sites_disagree; ++conn) {
    const bool accept_hit = engine.accept_fault(conn).kind != fault_kind::none;
    const bool read_hit = engine.read_fault(conn, 0).kind != fault_kind::none;
    const bool write_hit = engine.write_fault(conn, 0).kind != fault_kind::none;
    sites_disagree = accept_hit != read_hit || read_hit != write_hit;
  }
  EXPECT_TRUE(sites_disagree);
}

// --- serial loopback replay ------------------------------------------

service::query_service* chaos_service() {
  static service::query_service svc;
  return &svc;
}

server_config chaos_config(const std::string& spec_text) {
  server_config config;
  config.port = 0;
  config.workers = 1;  // serial: accept order == serve order
  config.queue_capacity = 16;
  config.overload_response = service::error_response(
      service::error_code::overloaded, "connection queue full");
  config.overlong_response = service::error_response(
      service::error_code::limit_exceeded, "request line too long");
  config.internal_error_response = service::error_response(
      service::error_code::internal_error, "handler failed");
  config.deadline_response = service::error_response(
      service::error_code::deadline_exceeded, "deadline exceeded");
  config.chaos =
      std::make_shared<const chaos_engine>(chaos_spec::parse(spec_text));
  return config;
}

struct replay_transcript {
  std::vector<std::string> events;  // "status|response" per request
  std::uint64_t successes = 0;
  std::uint64_t malformed = 0;
};

/// One serial closed-loop run: a single retry client sends the same
/// request sequence; connection indices advance deterministically because
/// nothing else connects.
replay_transcript run_serial(const std::string& spec_text) {
  const server_config config = chaos_config(spec_text);
  line_server server(config, [](const std::string& line) {
    return chaos_service()->handle(line);
  });

  service::retry_policy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_ms = 10000;
  policy.backoff_base_ms = 0;  // replay speed; jitter of 0 stays 0
  policy.backoff_max_ms = 0;
  policy.seed = 77;
  service::retry_client client(server.port(), policy);

  replay_transcript out;
  for (int i = 0; i < 48; ++i) {
    // Deterministic ops only (lmhat is a pure closed form): response
    // bytes must be able to match across runs.
    const std::string request =
        "{\"op\":\"lmhat\",\"k\":" + std::to_string(2 + i % 5) +
        ",\"depth\":" + std::to_string(3 + i % 3) + ",\"n\":[1,10,100]}";
    const service::call_result result = client.call(request);
    out.events.push_back(std::string(call_status_name(result.status)) + "|" +
                         result.response);
    if (result.ok()) ++out.successes;
    if (!result.response.empty()) {
      try {
        (void)json::parse(result.response);
      } catch (const std::exception&) {
        ++out.malformed;
      }
    }
  }
  server.shutdown();
  server.wait();
  return out;
}

TEST(chaos_replay, serial_runs_are_byte_identical) {
  // Aggressive kill-heavy spec, no sleeps: every fault class that can
  // change bytes fires often, and the test stays fast.
  const std::string spec =
      "seed=5,drop=0.15,reset=0.1,truncate=0.15,stall=0.05:1";
  const replay_transcript first = run_serial(spec);
  const replay_transcript second = run_serial(spec);

  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.successes, second.successes);
  // The retry client must have recovered every request despite the
  // kill-heavy schedule — goodput accounting equals the serial replay.
  EXPECT_EQ(first.successes, 48u);
  EXPECT_EQ(first.malformed, 0u);
  EXPECT_EQ(second.malformed, 0u);
}

}  // namespace
}  // namespace mcast::net
