// Reachability profiles and the generalized predictors (Eqs 23, 30).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/kary_exact.hpp"
#include "analysis/reachability.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(reachability, profile_on_kary_tree_is_exponential) {
  const graph g = make_kary_tree(3, 4);
  const reachability_profile p = reachability_from(g, 0);
  ASSERT_EQ(p.s.size(), 5u);
  EXPECT_DOUBLE_EQ(p.s[1], 3.0);
  EXPECT_DOUBLE_EQ(p.s[2], 9.0);
  EXPECT_DOUBLE_EQ(p.s[3], 27.0);
  EXPECT_DOUBLE_EQ(p.s[4], 81.0);
  EXPECT_DOUBLE_EQ(p.total_sites(), 120.0);
  EXPECT_EQ(p.max_radius(), 4u);
  EXPECT_DOUBLE_EQ(p.t[2], 12.0);
}

TEST(reachability, profile_on_ring_is_flat) {
  const graph g = make_ring(10);
  const reachability_profile p = reachability_from(g, 0);
  for (unsigned r = 1; r <= 4; ++r) EXPECT_DOUBLE_EQ(p.s[r], 2.0);
  EXPECT_DOUBLE_EQ(p.s[5], 1.0);  // antipode
  EXPECT_DOUBLE_EQ(p.total_sites(), 9.0);
}

TEST(reachability, mean_distance_matches_closed_form) {
  const graph g = make_kary_tree(2, 2);
  const reachability_profile p = reachability_from(g, 0);
  EXPECT_NEAR(p.mean_distance(), 10.0 / 6.0, 1e-12);
}

TEST(reachability, mean_profile_averages_sources) {
  const graph g = make_path(5);
  rng gen(3);
  const reachability_profile p = mean_reachability(g, 64, gen);
  // Total sites from any source of a connected 5-path is 4.
  EXPECT_NEAR(p.total_sites(), 4.0, 1e-9);
  // s[4] > 0 only from the two end nodes: expected 2/5 on average.
  EXPECT_NEAR(p.s[4], 2.0 / 5.0, 0.15);
}

TEST(reachability, eq23_reduces_to_kary_formula) {
  // With S(r) = k^r, Eq 23 must equal Eq 4 exactly.
  const unsigned k = 2, d = 9;
  const std::vector<double> s = synthetic_reachability_exponential(2.0, d);
  for (double n : {1.0, 7.0, 100.0, 5000.0}) {
    EXPECT_NEAR(general_tree_size_leaves(s, n), kary_tree_size_leaves(k, d, n),
                1e-6)
        << "n=" << n;
  }
}

TEST(reachability, eq30_reduces_to_kary_all_sites_formula) {
  // With the tree profile, Eq 30 must equal Eq 21 exactly.
  const unsigned k = 3, d = 5;
  const graph g = make_kary_tree(k, d);
  const reachability_profile p = reachability_from(g, 0);
  for (double n : {1.0, 10.0, 200.0}) {
    EXPECT_NEAR(general_tree_size_all_sites(p.s, n),
                kary_tree_size_all_sites(k, d, n), 1e-6)
        << "n=" << n;
  }
}

TEST(reachability, predictors_saturate_at_link_budget) {
  const std::vector<double> s = {0.0, 4.0, 16.0, 64.0};
  const double budget = 4.0 + 16.0 + 64.0;
  EXPECT_NEAR(general_tree_size_leaves(s, 1e9), budget, 1e-6);
  EXPECT_NEAR(general_tree_size_all_sites(s, 1e9), budget, 1e-6);
  EXPECT_DOUBLE_EQ(general_tree_size_leaves(s, 0.0), 0.0);
}

TEST(reachability, predictor_handles_unit_levels) {
  // S(r) = 1 at some level (e.g. a chain segment): probability 1 per draw.
  const std::vector<double> s = {0.0, 1.0, 2.0};
  EXPECT_NEAR(general_tree_size_leaves(s, 1.0), 1.0 + 2.0 * 0.5, 1e-12);
}

TEST(reachability, synthetic_families_normalized_at_depth) {
  const unsigned d = 20;
  const double anchor = std::pow(2.0, 20.0);
  const auto exp2 = synthetic_reachability_exponential(2.0, d);
  const auto pow4 = synthetic_reachability_power(4.0, d, anchor);
  const auto sup = synthetic_reachability_superexponential(std::log(2.0) / d, d, anchor);
  EXPECT_NEAR(exp2[d], anchor, 1e-3);
  EXPECT_NEAR(pow4[d], anchor, 1e-3);
  EXPECT_NEAR(sup[d], anchor, anchor * 1e-9);
  // Ordering below the anchor: power > exponential > super-exponential at
  // mid radii (slow growth has more early mass).
  EXPECT_GT(pow4[d / 2], exp2[d / 2]);
  EXPECT_LT(sup[d / 2], exp2[d / 2]);
}

TEST(reachability, growth_fit_classifies_families) {
  const unsigned d = 16;
  const double anchor = std::pow(2.0, 16.0);
  reachability_profile exp_p, pow_p;
  exp_p.s = synthetic_reachability_exponential(2.0, d);
  pow_p.s = synthetic_reachability_power(3.0, d, anchor);
  exp_p.t.assign(exp_p.s.size(), 0.0);
  pow_p.t.assign(pow_p.s.size(), 0.0);
  for (std::size_t r = 1; r <= d; ++r) {
    exp_p.t[r] = exp_p.t[r - 1] + exp_p.s[r];
    pow_p.t[r] = pow_p.t[r - 1] + pow_p.s[r];
  }
  const auto ef = fit_reachability_growth(exp_p, 1.0);
  const auto pf = fit_reachability_growth(pow_p, 1.0);
  EXPECT_GT(ef.r_squared, 0.99) << "pure exponential should fit ln T ~ r";
  EXPECT_NEAR(ef.lambda, std::log(2.0), 0.1);
  EXPECT_LT(pf.r_squared, ef.r_squared);
}

TEST(reachability, growth_fit_degenerate_profiles) {
  reachability_profile p;  // empty
  const auto f = fit_reachability_growth(p);
  EXPECT_EQ(f.radii_used, 0u);
  EXPECT_DOUBLE_EQ(f.lambda, 0.0);
}

TEST(reachability, validation) {
  const graph g = make_path(3);
  rng gen(1);
  EXPECT_THROW(mean_reachability(g, 0, gen), std::invalid_argument);
  EXPECT_THROW(general_tree_size_leaves({0.0, 2.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(synthetic_reachability_exponential(1.0, 5), std::invalid_argument);
  EXPECT_THROW(synthetic_reachability_power(0.0, 5, 10.0), std::invalid_argument);
  EXPECT_THROW(synthetic_reachability_superexponential(0.2, 5, 0.5),
               std::invalid_argument);
  reachability_profile p;
  EXPECT_THROW(fit_reachability_growth(p, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
