// Monte-Carlo runner: methodology invariants and cross-checks against the
// exact k-ary analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/kary_exact.hpp"
#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

monte_carlo_params quick_params() {
  monte_carlo_params p;
  p.receiver_sets = 20;
  p.sources = 10;
  p.seed = 77;
  return p;
}

TEST(runner, deterministic_given_seed) {
  waxman_params wp;
  wp.nodes = 60;
  const graph g = make_waxman(wp, 2);
  const auto grid = default_group_grid(59, 8);
  const auto a = measure_distinct_receivers(g, grid, quick_params());
  const auto b = measure_distinct_receivers(g, grid, quick_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ratio_mean, b[i].ratio_mean);
    EXPECT_DOUBLE_EQ(a[i].tree_links_mean, b[i].tree_links_mean);
  }
}

TEST(runner, group_size_one_ratio_is_one) {
  // One receiver: L = path length = ū_sample, so L/ū = 1 exactly.
  const graph g = make_ring(20);
  const auto res = measure_distinct_receivers(g, {1}, quick_params());
  ASSERT_EQ(res.size(), 1u);
  EXPECT_DOUBLE_EQ(res[0].ratio_mean, 1.0);
  EXPECT_DOUBLE_EQ(res[0].ratio_stderr, 0.0);
  EXPECT_DOUBLE_EQ(res[0].distinct_mean, 1.0);
}

TEST(runner, full_group_is_spanning_tree) {
  const graph g = make_grid(5, 5);
  const auto res = measure_distinct_receivers(g, {24}, quick_params());
  EXPECT_DOUBLE_EQ(res[0].tree_links_mean, 24.0);
  EXPECT_DOUBLE_EQ(res[0].tree_links_stderr, 0.0);
}

TEST(runner, tree_size_monotone_in_group_size) {
  waxman_params wp;
  wp.nodes = 80;
  const graph g = make_waxman(wp, 4);
  const auto res =
      measure_distinct_receivers(g, {1, 4, 16, 64}, quick_params());
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_GT(res[i].tree_links_mean, res[i - 1].tree_links_mean);
  }
}

TEST(runner, multicast_never_exceeds_unicast_total) {
  // L <= m·ū per sample, hence ratio_mean <= m.
  waxman_params wp;
  wp.nodes = 70;
  const graph g = make_waxman(wp, 5);
  const auto res = measure_distinct_receivers(g, {2, 8, 32}, quick_params());
  for (const auto& p : res) {
    EXPECT_LE(p.ratio_mean, static_cast<double>(p.group_size) + 1e-9);
    EXPECT_GE(p.ratio_mean, 1.0 - 1e-9);
  }
}

TEST(runner, with_replacement_matches_kary_closed_form) {
  const graph g = make_kary_tree(2, 6);
  monte_carlo_params p;
  p.receiver_sets = 60;
  p.sources = 1;  // root is random; use many sets instead
  p.seed = 5;
  // Compare only the tree-size mean for source = whatever the runner picks;
  // on a tree every source yields a valid L̂, but the closed form assumes
  // the root, so build a rooted fixture via an explicit path: use ring
  // symmetry instead — skip and use the all-sites formula with the actual
  // sampled source being the root is not guaranteed. Instead verify the
  // distinct-receiver count against the coupon-collector mean, which is
  // source independent.
  const auto res = measure_with_replacement(g, {1, 10, 50}, p);
  const double sites = static_cast<double>(g.node_count() - 1);
  for (const auto& row : res) {
    const double predicted =
        sites * (1.0 - std::pow(1.0 - 1.0 / sites,
                                static_cast<double>(row.group_size)));
    EXPECT_NEAR(row.distinct_mean, predicted, 0.12 * predicted + 0.3);
  }
}

TEST(runner, distinct_model_reports_exact_distinct_count) {
  const graph g = make_grid(6, 6);
  const auto res = measure_distinct_receivers(g, {7}, quick_params());
  EXPECT_DOUBLE_EQ(res[0].distinct_mean, 7.0);
}

TEST(runner, thread_count_does_not_change_results) {
  // Every source task has its own derived RNG stream, so 1 thread and N
  // threads must produce bit-identical statistics.
  waxman_params wp;
  wp.nodes = 70;
  const graph g = make_waxman(wp, 3);
  const std::vector<std::uint64_t> grid = {1, 5, 20, 60};
  monte_carlo_params seq = quick_params();
  seq.threads = 1;
  monte_carlo_params par = quick_params();
  par.threads = 4;
  monte_carlo_params hw = quick_params();
  hw.threads = 0;  // hardware concurrency
  const auto a = measure_distinct_receivers(g, grid, seq);
  const auto b = measure_distinct_receivers(g, grid, par);
  const auto c = measure_distinct_receivers(g, grid, hw);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ratio_mean, b[i].ratio_mean);
    EXPECT_DOUBLE_EQ(a[i].tree_links_mean, b[i].tree_links_mean);
    EXPECT_DOUBLE_EQ(a[i].ratio_stderr, b[i].ratio_stderr);
    EXPECT_DOUBLE_EQ(a[i].ratio_mean, c[i].ratio_mean);
  }
}

TEST(runner, randomized_spt_parents_agree_within_noise) {
  // DESIGN.md §6.1: the measurement must not hinge on the BFS parent rule.
  waxman_params wp;
  wp.nodes = 90;
  const graph g = make_waxman(wp, 8);
  monte_carlo_params det = quick_params();
  det.receiver_sets = 30;
  det.sources = 20;
  monte_carlo_params rnd = det;
  rnd.randomize_spt_parents = true;
  const std::vector<std::uint64_t> grid = {2, 8, 32};
  const auto a = measure_distinct_receivers(g, grid, det);
  const auto b = measure_distinct_receivers(g, grid, rnd);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(b[i].ratio_mean / a[i].ratio_mean, 1.0, 0.06) << "m=" << grid[i];
    // Unicast path lengths are tie-break independent and use the same
    // sampling stream positions only when the parent draw count matches,
    // so compare them loosely too.
    EXPECT_NEAR(b[i].unicast_mean / a[i].unicast_mean, 1.0, 0.06);
  }
}

TEST(runner, default_group_grid_shape) {
  const auto grid = default_group_grid(1000, 16);
  EXPECT_EQ(grid.front(), 1u);
  EXPECT_EQ(grid.back(), 1000u);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_LT(grid[i - 1], grid[i]);
}

TEST(runner, validation) {
  const graph g = make_ring(10);
  monte_carlo_params p = quick_params();
  EXPECT_THROW(measure_distinct_receivers(g, {0}, p), std::invalid_argument);
  EXPECT_THROW(measure_distinct_receivers(g, {10}, p), std::invalid_argument);
  EXPECT_NO_THROW(measure_with_replacement(g, {100}, p));  // n may exceed sites
  p.sources = 0;
  EXPECT_THROW(measure_distinct_receivers(g, {1}, p), std::invalid_argument);

  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_THROW(measure_distinct_receivers(b.build(), {1}, quick_params()),
               std::invalid_argument)
      << "disconnected graphs must be rejected";
}

}  // namespace
}  // namespace mcast
