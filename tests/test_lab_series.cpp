// Engine-level series guarantees for the analytic figures (2, 3, 4):
//   * byte-identical output across scheduler thread counts (1 vs 4) and
//     with the SPT cache on or off — the scheduler splices sweep points
//     back in index order, so parallelism must never show in the bytes;
//   * byte-identical to the checked-in goldens under tests/data/ (the
//     exact text the retired per-figure binaries printed at scale 0);
//   * differentially identical to a direct closed-form recomputation
//     (fig2's h(x) and fig4's L(m)/D evaluated straight from
//     analysis/kary_exact.hpp at the recorded x grid).
//
// Regenerating after a *deliberate* output change:
//   MCAST_REGEN_GOLDEN=1 ./test_lab_series
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/kary_exact.hpp"
#include "experiments.hpp"
#include "lab/engine.hpp"
#include "lab/registry.hpp"

namespace mcast::lab {
namespace {

#ifndef MCAST_TEST_DATA_DIR
#error "MCAST_TEST_DATA_DIR must be defined by the build"
#endif

const registry& builtin() {
  static const registry reg = [] {
    registry r;
    register_builtin(r);
    return r;
  }();
  return reg;
}

run_outcome run_at_scale0(const std::string& id, std::size_t threads,
                          bool use_spt_cache) {
  const experiment* exp = builtin().find(id);
  if (exp == nullptr) throw std::runtime_error("unknown experiment " + id);
  run_options opts;
  opts.scale = 0;
  opts.threads = threads;
  opts.use_spt_cache = use_spt_cache;
  return run_experiment(*exp, opts);
}

std::string data_path(const std::string& file) {
  return std::string(MCAST_TEST_DATA_DIR) + "/" + file;
}

bool regen() { return std::getenv("MCAST_REGEN_GOLDEN") != nullptr; }

// Compares a run's rendered text against tests/data/lab_<id>_scale0.txt
// byte for byte (or rewrites it under MCAST_REGEN_GOLDEN=1).
void check_golden(const std::string& id, const std::string& rendered) {
  const std::string path = data_path("lab_" + id + "_scale0.txt");
  if (regen()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with MCAST_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(rendered, want.str()) << id << " drifted from " << path;
}

class lab_series : public ::testing::TestWithParam<const char*> {};

TEST_P(lab_series, thread_count_and_cache_invariant_and_golden) {
  const std::string id = GetParam();
  const run_outcome one = run_at_scale0(id, 1, true);
  const std::string base = one.output.str();
  ASSERT_FALSE(base.empty());

  EXPECT_EQ(run_at_scale0(id, 4, true).output.str(), base)
      << id << ": output depends on scheduler thread count";
  EXPECT_EQ(run_at_scale0(id, 4, false).output.str(), base)
      << id << ": output depends on the SPT cache toggle";

  check_golden(id, base);
}

INSTANTIATE_TEST_SUITE_P(analytic_figures, lab_series,
                         ::testing::Values("fig2", "fig3", "fig4"));

// Parses "k=K,D=D  (...)" labels emitted by fig2/fig4.
bool parse_kd(const std::string& label, unsigned& k, unsigned& d) {
  unsigned kk = 0, dd = 0;
  if (std::sscanf(label.c_str(), "k=%u,D=%u", &kk, &dd) != 2) return false;
  k = kk;
  d = dd;
  return true;
}

// Differential check: every fig2 curve point must equal the closed form
// evaluated at the recorded x — bit for bit, since the experiment computes
// exactly this expression.
TEST(lab_series_differential, fig2_matches_kary_h_exact) {
  const run_outcome out = run_at_scale0("fig2", 4, true);
  std::size_t curves = 0;
  for (const auto& s : out.output.all_series()) {
    unsigned k = 0, d = 0;
    if (!parse_kd(s.label, k, d)) continue;  // reference lines
    ++curves;
    ASSERT_EQ(s.x.size(), s.y.size()) << s.label;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      EXPECT_EQ(s.y[i], kary_h_exact(k, d, s.x[i]))
          << s.label << " point " << i;
    }
  }
  EXPECT_EQ(curves, 6u);  // two panels, three depths each
}

TEST(lab_series_differential, fig4_matches_kary_tree_size) {
  const run_outcome out = run_at_scale0("fig4", 4, true);
  std::size_t curves = 0;
  for (const auto& s : out.output.all_series()) {
    unsigned k = 0, d = 0;
    if (!parse_kd(s.label, k, d)) continue;
    ++curves;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      EXPECT_EQ(s.y[i], kary_tree_size_distinct_leaves(k, d, s.x[i]) / d)
          << s.label << " point " << i;
    }
  }
  EXPECT_EQ(curves, 6u);
}

// A Monte-Carlo experiment (fig1 with a tiny override budget) must also be
// invariant to the engine's thread grant — the runner partitions by source
// deterministically.
TEST(lab_series_differential, fig1_small_run_thread_invariant) {
  const experiment* exp = builtin().find("fig1");
  ASSERT_NE(exp, nullptr);
  run_options opts;
  opts.scale = 0;
  opts.overrides = {{"suite", "generated"},
                    {"budget", "150"},
                    {"receiver_sets", "3"},
                    {"sources", "3"},
                    {"grid_points", "6"}};
  opts.threads = 1;
  const std::string one = run_experiment(*exp, opts).output.str();
  opts.threads = 4;
  const std::string four = run_experiment(*exp, opts).output.str();
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace mcast::lab
