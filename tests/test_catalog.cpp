// Topology catalog: the paper suite's membership, lookup, scaling.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/components.hpp"
#include "topo/catalog.hpp"

namespace mcast {
namespace {

TEST(catalog, paper_suite_membership_and_order) {
  const auto all = paper_networks();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "r100");
  EXPECT_EQ(all[1].name, "ts1000");
  EXPECT_EQ(all[2].name, "ts1008");
  EXPECT_EQ(all[3].name, "ti5000");
  EXPECT_EQ(all[4].name, "ARPA");
  EXPECT_EQ(all[5].name, "MBone");
  EXPECT_EQ(all[6].name, "Internet");
  EXPECT_EQ(all[7].name, "AS");
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(all[i].kind, network_kind::generated);
  }
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(all[i].kind, network_kind::real);
  }
}

TEST(catalog, find_network) {
  EXPECT_EQ(find_network("ARPA").name, "ARPA");
  EXPECT_EQ(find_network("ts1008").name, "ts1008");
  EXPECT_THROW(find_network("nope"), std::invalid_argument);
}

TEST(catalog, small_entries_build_with_expected_sizes) {
  EXPECT_EQ(find_network("r100").build(1).node_count(), 100u);
  EXPECT_EQ(find_network("ARPA").build(1).node_count(), 47u);
  EXPECT_EQ(find_network("ts1000").build(1).node_count(), 1000u);
  EXPECT_EQ(find_network("ts1008").build(1).node_count(), 1008u);
}

TEST(catalog, builds_are_deterministic_in_seed) {
  const auto entry = find_network("r100");
  EXPECT_EQ(entry.build(3).edges(), entry.build(3).edges());
  EXPECT_NE(entry.build(3).edges(), entry.build(4).edges());
}

TEST(catalog, entries_name_their_graphs) {
  for (const auto& e : generated_networks()) {
    if (e.name == "ti5000") continue;  // big; covered in tiers tests
    EXPECT_EQ(e.build(1).name(), e.name);
  }
}

TEST(catalog, scaled_suite_respects_budget) {
  const auto scaled = scaled_networks(paper_networks(), 600);
  ASSERT_EQ(scaled.size(), 8u);
  for (const auto& e : scaled) {
    const graph g = e.build(2);
    EXPECT_LE(g.node_count(), 700u) << e.name;  // small headroom for MBone
    EXPECT_GE(g.node_count(), 40u) << e.name;
    EXPECT_TRUE(is_connected(largest_component(g))) << e.name;
    EXPECT_EQ(g.name(), e.name);
  }
}

TEST(catalog, scaled_suite_rejects_tiny_budget) {
  EXPECT_THROW(scaled_networks(paper_networks(), 10), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
