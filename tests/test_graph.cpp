// graph: CSR invariants, queries, bounds checking.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace mcast {
namespace {

graph triangle_plus_tail() {
  // 0-1, 1-2, 2-0 triangle; 2-3 tail.
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  return b.build();
}

TEST(graph, default_is_empty) {
  graph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.edges().empty());
}

TEST(graph, counts) {
  const graph g = triangle_plus_tail();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_FALSE(g.empty());
}

TEST(graph, neighbors_sorted_and_symmetric) {
  const graph g = triangle_plus_tail();
  for (node_id v = 0; v < g.node_count(); ++v) {
    node_id prev = 0;
    bool first = true;
    for (node_id w : g.neighbors(v)) {
      if (!first) {
        EXPECT_LT(prev, w) << "adjacency not strictly sorted";
      }
      prev = w;
      first = false;
      EXPECT_TRUE(g.has_edge(w, v)) << "edge not symmetric";
    }
  }
}

TEST(graph, degree_matches_neighbors) {
  const graph g = triangle_plus_tail();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  for (node_id v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g.degree(v), g.neighbors(v).size());
  }
}

TEST(graph, has_edge) {
  const graph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(graph, edges_lists_each_once_ordered) {
  const graph g = triangle_plus_tail();
  const std::vector<edge> es = g.edges();
  ASSERT_EQ(es.size(), 4u);
  for (const edge& e : es) EXPECT_LT(e.a, e.b);
  EXPECT_EQ(es[0], (edge{0, 1}));
  EXPECT_EQ(es[1], (edge{0, 2}));
  EXPECT_EQ(es[2], (edge{1, 2}));
  EXPECT_EQ(es[3], (edge{2, 3}));
}

TEST(graph, out_of_range_queries_throw) {
  const graph g = triangle_plus_tail();
  EXPECT_THROW(g.neighbors(4), std::out_of_range);
  EXPECT_THROW(g.degree(4), std::out_of_range);
  EXPECT_THROW(g.has_edge(0, 4), std::out_of_range);
  EXPECT_THROW(g.has_edge(4, 0), std::out_of_range);
}

TEST(graph, name_round_trip) {
  graph g = triangle_plus_tail();
  EXPECT_TRUE(g.name().empty());
  g.set_name("fixture");
  EXPECT_EQ(g.name(), "fixture");
}

TEST(graph, isolated_nodes_have_empty_adjacency) {
  graph_builder b(3);
  b.add_edge(0, 1);
  const graph g = b.build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

}  // namespace
}  // namespace mcast
