// Power-law generators: BA structure and degree tail, Chung-Lu exponent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "topo/power_law.hpp"

namespace mcast {
namespace {

TEST(barabasi_albert, node_and_edge_counts) {
  barabasi_albert_params p;
  p.nodes = 500;
  p.edges_per_node = 2;
  const graph g = make_barabasi_albert(p, 1);
  EXPECT_EQ(g.node_count(), 500u);
  // Star core of m edges + (n - m - 1) nodes adding m edges each, minus any
  // parallel-edge merges (the builder dedups; BA draws distinct targets so
  // only exact repeats across steps are impossible — count is exact).
  EXPECT_EQ(g.edge_count(), 2u + (500u - 3u) * 2u);
}

TEST(barabasi_albert, connected_and_deterministic) {
  barabasi_albert_params p;
  p.nodes = 800;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    EXPECT_TRUE(is_connected(make_barabasi_albert(p, seed)));
  }
  EXPECT_EQ(make_barabasi_albert(p, 5).edges(),
            make_barabasi_albert(p, 5).edges());
  EXPECT_NE(make_barabasi_albert(p, 5).edges(),
            make_barabasi_albert(p, 6).edges());
}

TEST(barabasi_albert, heavy_tailed_degrees) {
  barabasi_albert_params p;
  p.nodes = 4000;
  p.edges_per_node = 2;
  const graph g = make_barabasi_albert(p, 9);
  const degree_stats s = compute_degree_stats(g);
  // Mean degree ~2m but the max is far above it (hubs).
  EXPECT_NEAR(s.mean, 4.0, 0.2);
  EXPECT_GT(s.max, 60u) << "BA should grow hubs";
  // Most nodes sit at the minimum degree m.
  EXPECT_GT(s.histogram[2], 1500u);
}

TEST(barabasi_albert, min_degree_is_m) {
  barabasi_albert_params p;
  p.nodes = 300;
  p.edges_per_node = 3;
  const degree_stats s = compute_degree_stats(make_barabasi_albert(p, 2));
  EXPECT_GE(s.min, 3u);
}

TEST(barabasi_albert, invalid_parameters_throw) {
  barabasi_albert_params p;
  p.nodes = 1;
  EXPECT_THROW(make_barabasi_albert(p, 1), std::invalid_argument);
  p.nodes = 10;
  p.edges_per_node = 0;
  EXPECT_THROW(make_barabasi_albert(p, 1), std::invalid_argument);
  p.edges_per_node = 10;
  EXPECT_THROW(make_barabasi_albert(p, 1), std::invalid_argument);
}

TEST(chung_lu, respects_exponent_ordering) {
  // A smaller exponent means a heavier tail (larger hubs).
  chung_lu_params heavy, light;
  heavy.nodes = light.nodes = 5000;
  heavy.exponent = 2.1;
  light.exponent = 3.5;
  heavy.min_degree = light.min_degree = 2.0;
  const degree_stats sh = compute_degree_stats(make_chung_lu(heavy, 4));
  const degree_stats sl = compute_degree_stats(make_chung_lu(light, 4));
  EXPECT_GT(sh.max, sl.max * 2);
}

TEST(chung_lu, giant_component_extraction) {
  chung_lu_params p;
  p.nodes = 2000;
  p.min_degree = 1.0;
  p.keep_largest_component = true;
  const graph g = make_chung_lu(p, 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.node_count(), 500u);  // giant component is most of the graph
  EXPECT_LE(g.node_count(), 2000u);
}

TEST(chung_lu, keep_all_components_option) {
  chung_lu_params p;
  p.nodes = 2000;
  p.min_degree = 1.0;
  p.keep_largest_component = false;
  const graph g = make_chung_lu(p, 7);
  EXPECT_EQ(g.node_count(), 2000u);
  EXPECT_FALSE(is_connected(g));  // isolated low-weight nodes exist
}

TEST(chung_lu, deterministic_given_seed) {
  chung_lu_params p;
  p.nodes = 1000;
  EXPECT_EQ(make_chung_lu(p, 11).edges(), make_chung_lu(p, 11).edges());
}

TEST(chung_lu, invalid_parameters_throw) {
  chung_lu_params p;
  p.exponent = 1.0;
  EXPECT_THROW(make_chung_lu(p, 1), std::invalid_argument);
  p = chung_lu_params{};
  p.min_degree = 0.0;
  EXPECT_THROW(make_chung_lu(p, 1), std::invalid_argument);
  p = chung_lu_params{};
  p.max_degree_fraction = 0.0;
  EXPECT_THROW(make_chung_lu(p, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
