// Unicast cost accounting: totals, averages, repeats, unreachable errors.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "multicast/unicast.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(unicast, totals_on_path) {
  const graph g = make_path(6);
  const source_tree t(g, 0);
  const node_id r[] = {1, 3, 5};
  EXPECT_EQ(unicast_total_links(t, r), 1u + 3u + 5u);
  EXPECT_DOUBLE_EQ(unicast_average_length(t, r), 3.0);
}

TEST(unicast, repeats_count_every_stream) {
  const graph g = make_path(4);
  const source_tree t(g, 0);
  const node_id r[] = {3, 3};
  EXPECT_EQ(unicast_total_links(t, r), 6u);
}

TEST(unicast, empty_receiver_set) {
  const graph g = make_path(4);
  const source_tree t(g, 0);
  EXPECT_EQ(unicast_total_links(t, {}), 0u);
  EXPECT_DOUBLE_EQ(unicast_average_length(t, {}), 0.0);
}

TEST(unicast, average_over_all_nodes_kary) {
  // Binary tree depth 2: distances {1,1,2,2,2,2} from root -> mean 10/6.
  const graph g = make_kary_tree(2, 2);
  const source_tree t(g, 0);
  EXPECT_NEAR(unicast_average_length_all(t), 10.0 / 6.0, 1e-12);
}

TEST(unicast, average_all_ignores_unreachable) {
  graph_builder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);  // separate island
  const graph g = b.build();
  const source_tree t(g, 0);
  EXPECT_NEAR(unicast_average_length_all(t), (1.0 + 2.0) / 2.0, 1e-12);
}

TEST(unicast, unreachable_receiver_throws) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph g = b.build();
  const source_tree t(g, 0);
  const node_id r[] = {2};
  EXPECT_THROW(unicast_total_links(t, r), std::invalid_argument);
}

TEST(unicast, source_receiver_contributes_zero) {
  const graph g = make_ring(6);
  const source_tree t(g, 1);
  const node_id r[] = {1, 2};
  EXPECT_EQ(unicast_total_links(t, r), 1u);
}

}  // namespace
}  // namespace mcast
