// Cross-module coverage: paths not exercised elsewhere — the affinity
// chain over a general-graph distance oracle, file-backed edge-list I/O,
// and sampled-vs-exact metric agreement on irregular graphs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "multicast/affinity.hpp"
#include "multicast/receivers.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

TEST(misc, affinity_chain_on_general_graph_oracle) {
  // Section 5 on a non-tree topology: clustering must still shrink the
  // delivery tree, with distances served by cached BFS rows.
  waxman_params p;
  p.nodes = 150;
  const graph g = make_waxman(p, 21);
  const source_tree tree(g, 0);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  const graph_distance_oracle oracle(g);

  auto run = [&](double beta) {
    affinity_chain_params params;
    params.beta = beta;
    params.burn_in_sweeps = 20;
    params.sample_sweeps = 8;
    rng gen(5);
    return sample_affinity_tree_size(tree, universe, 18, oracle, params, gen)
        .mean_tree_size;
  };
  const double clustered = run(8.0);
  const double uniform = run(0.0);
  const double spread = run(-8.0);
  EXPECT_LT(clustered, uniform);
  EXPECT_GT(spread, uniform);
}

TEST(misc, edge_list_file_round_trip) {
  waxman_params p;
  p.nodes = 40;
  graph original = make_waxman(p, 9);
  original.set_name("file-fixture");

  const std::string path = ::testing::TempDir() + "/mcast_io_fixture.txt";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    write_edge_list(out, original);
  }
  const graph loaded = load_edge_list(path, "file-fixture");
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded.edges(), original.edges());
  EXPECT_EQ(loaded.name(), "file-fixture");
  std::remove(path.c_str());
}

TEST(misc, load_edge_list_default_name_is_path) {
  const std::string path = ::testing::TempDir() + "/mcast_io_named.txt";
  {
    std::ofstream out(path);
    out << "2\n0 1\n";
  }
  EXPECT_EQ(load_edge_list(path).name(), path);
  std::remove(path.c_str());
}

TEST(misc, sampled_path_length_close_to_exact_on_irregular_graph) {
  waxman_params p;
  p.nodes = 300;
  const graph g = make_waxman(p, 11);
  const double exact = average_path_length_exact(g);
  rng gen(2);
  const double sampled = average_path_length_sampled(
      g, 64, [&gen](std::size_t n) { return gen.below(n); });
  EXPECT_NEAR(sampled / exact, 1.0, 0.05);
}

TEST(misc, summarize_network_threshold_consistency) {
  // The same graph summarized exactly and via sampling must agree on the
  // structural columns and approximately on the path columns.
  waxman_params p;
  p.nodes = 250;
  const graph g = make_waxman(p, 13);
  const table1_row exact = summarize_network(g, /*exact_threshold=*/1000);
  const table1_row sampled = summarize_network(g, /*exact_threshold=*/10,
                                               /*samples=*/96, /*seed=*/4);
  EXPECT_EQ(exact.nodes, sampled.nodes);
  EXPECT_EQ(exact.links, sampled.links);
  EXPECT_DOUBLE_EQ(exact.avg_degree, sampled.avg_degree);
  EXPECT_NEAR(sampled.avg_path_length / exact.avg_path_length, 1.0, 0.06);
  EXPECT_LE(sampled.diameter, exact.diameter);
  EXPECT_GE(sampled.diameter, exact.diameter / 2);
}

}  // namespace
}  // namespace mcast
