// Embedded ARPA topology: exact structural fingerprint.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "topo/arpanet.hpp"

namespace mcast {
namespace {

TEST(arpanet, fixed_fingerprint) {
  const graph g = make_arpanet();
  EXPECT_EQ(g.node_count(), 47u);
  EXPECT_EQ(g.edge_count(), 63u);
  EXPECT_EQ(g.name(), "ARPA");
}

TEST(arpanet, average_degree_matches_paper_range) {
  const graph g = make_arpanet();
  const double deg = compute_degree_stats(g).mean;
  // Paper's Table 1 lists ARPA at the low end (~2.7) of its degree range.
  EXPECT_GT(deg, 2.4);
  EXPECT_LT(deg, 3.0);
}

TEST(arpanet, connected_with_substantial_diameter) {
  const graph g = make_arpanet();
  EXPECT_TRUE(is_connected(g));
  const std::size_t diam = diameter_exact(g);
  // Small network, relatively long paths — the ARPANET character.
  EXPECT_GE(diam, 6u);
  EXPECT_LE(diam, 14u);
}

TEST(arpanet, identical_on_every_call) {
  EXPECT_EQ(make_arpanet().edges(), make_arpanet().edges());
}

TEST(arpanet, no_high_degree_hubs) {
  const degree_stats s = compute_degree_stats(make_arpanet());
  EXPECT_LE(s.max, 6u) << "ARPANET had no big hubs";
  EXPECT_GE(s.min, 1u);
}

}  // namespace
}  // namespace mcast
