// Strict-parse corpus for the expectation spec grammar (check/spec.hpp),
// in the test_lab_params tradition: every malformed directive must be a
// loud spec_error carrying file:line:col plus a caret-rendered copy of
// the offending line — never a silently skipped rule.
#include <gtest/gtest.h>

#include <string>

#include "check/spec.hpp"

namespace mcast::check {
namespace {

spec parse(const std::string& text) { return parse_spec(text, "t.expect"); }

// Asserts the parse fails and the message carries the expected location
// tag, a caret line, and the expected fragment.
void expect_reject(const std::string& text, const std::string& where,
                   const std::string& fragment) {
  try {
    parse(text);
    FAIL() << "expected spec_error for: " << text;
  } catch (const spec_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(where), std::string::npos)
        << "missing location '" << where << "' in:\n" << msg;
    EXPECT_NE(msg.find(fragment), std::string::npos)
        << "missing fragment '" << fragment << "' in:\n" << msg;
  }
}

TEST(check_spec, accepts_every_directive_kind) {
  const spec s = parse(
      "# comment\n"
      "\n"
      "assert counter.spt_cache.hits + counter.spt_cache.misses >= 1\n"
      "assert hist.sched.task_ns.count == counter.sched.tasks\n"
      "range derived.spt_cache_hit_rate 0 1\n"
      "present group service\n"
      "absent group nonexistent\n"
      "present fit SvcLoad\n"
      "span sweep_point within experiment:*\n"
      "span experiment:* budget_ms 5000\n"
      "span sweep_point count >= 1\n"
      "trace dropped == 0\n"
      "trace nested\n"
      "gate fit.SvcLoad.qps higher_better 0.5\n"
      "gate fit.SvcLoad.p99_ms lower_better 2\n");
  EXPECT_EQ(s.rules.size(), 13u);
  EXPECT_TRUE(s.needs_trace());
  EXPECT_TRUE(s.needs_baseline());
  EXPECT_EQ(s.rules[0].kind, rule_kind::assert_cmp);
  EXPECT_EQ(s.rules[0].line, 3);
  EXPECT_EQ(s.rules[0].op, cmp_op::ge);
  ASSERT_EQ(s.rules[0].lhs.terms.size(), 2u);
  EXPECT_EQ(s.rules[0].lhs.terms[1].metric, "counter.spt_cache.misses");
  ASSERT_EQ(s.rules[0].rhs.terms.size(), 1u);
  EXPECT_TRUE(s.rules[0].rhs.terms[0].is_literal);
  EXPECT_EQ(s.rules[12].kind, rule_kind::gate);
  EXPECT_FALSE(s.rules[12].higher_better);
  EXPECT_DOUBLE_EQ(s.rules[12].number, 2.0);
}

TEST(check_spec, manifest_only_spec_needs_nothing_extra) {
  const spec s = parse("assert threads >= 1\n");
  EXPECT_FALSE(s.needs_trace());
  EXPECT_FALSE(s.needs_baseline());
}

TEST(check_spec, subtraction_and_signs) {
  const spec s = parse(
      "assert counter.svc.requests - counter.svc.responses_error >= 0\n");
  ASSERT_EQ(s.rules[0].lhs.terms.size(), 2u);
  EXPECT_DOUBLE_EQ(s.rules[0].lhs.terms[1].sign, -1.0);
}

TEST(check_spec, rejects_empty_and_comment_only_files) {
  expect_reject("", "t.expect", "no rules");
  expect_reject("# only a comment\n\n", "t.expect", "no rules");
}

TEST(check_spec, rejects_unknown_metric_with_caret) {
  // Column 8: "assert " is 7 characters, the bad metric starts at 8.
  expect_reject("assert counter.spt_cache.hitz >= 0\n", "t.expect:1:8",
                "unknown metric 'counter.spt_cache.hitz'");
  expect_reject("assert gauge.spt_cache.hits >= 0\n", "t.expect:1:8",
                "unknown metric");
  expect_reject("range bogus_scalar 0 1\n", "t.expect:1:7",
                "unknown metric 'bogus_scalar'");
  expect_reject("assert derived.qps >= 0\n", ":1:8", "unknown metric");
}

TEST(check_spec, caret_line_points_at_the_offender) {
  try {
    parse("assert counter.spt_cache.hitz >= 0\n");
    FAIL();
  } catch (const spec_error& e) {
    // The caret sits under column 8 (two-space indent + 7 spaces).
    EXPECT_NE(std::string(e.what()).find("\n         ^"), std::string::npos)
        << e.what();
  }
}

TEST(check_spec, rejects_bad_histogram_paths) {
  expect_reject("assert hist.sched.task_ns.p42 >= 0\n", ":1:8",
                "unknown histogram field 'p42'");
  expect_reject("assert hist.sched.task_ns >= 0\n", ":1:8",
                "unknown histogram field");
  expect_reject("assert hist.nope.count >= 0\n", ":1:8", "unknown metric");
}

TEST(check_spec, rejects_bad_fit_shape) {
  expect_reject("gate fit.SvcLoad higher_better 0.5\n", ":1:6",
                "fit metric needs the form fit.<label>.<key>");
}

TEST(check_spec, rejects_bad_operator) {
  expect_reject("assert threads => 1\n", ":1:16",
                "expected '+', '-' or a comparison operator, got '=>'");
  expect_reject("assert threads = 1\n", ":1:16",
                "expected '+', '-' or a comparison operator, got '='");
  expect_reject("span sweep_point count ~ 3\n", ":1:24", "bad operator '~'");
}

TEST(check_spec, rejects_non_numeric_values) {
  expect_reject("gate fit.SvcLoad.qps higher_better fast\n", ":1:36",
                "relative tolerance must be a finite number, got 'fast'");
  expect_reject("gate fit.SvcLoad.qps higher_better -0.5\n", ":1:36",
                "relative tolerance must be >= 0");
  expect_reject("range threads 0 lots\n", ":1:17",
                "range high bound must be a finite number");
  expect_reject("range threads 5 1\n", ":1:15", "range bounds are inverted");
  expect_reject("span x budget_ms soon\n", ":1:18",
                "span budget (ms) must be a finite number");
  expect_reject("trace dropped == inf\n", ":1:18",
                "dropped-event count must be a finite number");
}

TEST(check_spec, rejects_malformed_directives) {
  expect_reject("frobnicate x\n", ":1:1", "unknown directive 'frobnicate'");
  expect_reject("assert threads >=\n", "t.expect:1:18",
                "expected a metric or number on the right side");
  expect_reject("assert >= 1\n", ":1:8",
                "expected a metric or number on the left side");
  expect_reject("present flavor x\n", ":1:9", "expected 'group' or 'fit'");
  expect_reject("absent fit SvcLoad\n", ":1:8", "expected 'group'");
  expect_reject("span sweep_point inside experiment:*\n", ":1:18",
                "expected 'within', 'budget_ms' or 'count'");
  expect_reject("trace lost == 0\n", ":1:7", "expected 'dropped' or 'nested'");
  expect_reject("gate fit.A.b sideways 0.5\n", ":1:14",
                "expected 'higher_better' or 'lower_better'");
  expect_reject("assert threads >= 1 extra\n", ":1:21",
                "expected '+', '-' or a comparison operator, got 'extra'");
  expect_reject("trace nested please\n", ":1:14",
                "unexpected trailing token 'please'");
}

TEST(check_spec, error_location_counts_lines) {
  expect_reject("assert threads >= 1\n\n# fine\nrange threads 1 0\n",
                "t.expect:4:15", "inverted");
}

TEST(check_spec, json_form_round_trip) {
  const spec s = parse(
      "{\"rules\": [\"assert threads >= 1\","
      " \"gate fit.SvcLoad.qps higher_better 0.5\"]}");
  EXPECT_EQ(s.rules.size(), 2u);
  EXPECT_EQ(s.rules[1].kind, rule_kind::gate);
}

TEST(check_spec, json_form_rejects_garbage) {
  expect_reject("{\"rules\": 3}", "t.expect", "needs a 'rules' array");
  expect_reject("{\"rules\": [], \"extra\": 1}", "t.expect",
                "unknown key 'extra'");
  expect_reject("{\"rules\": [42]}", "t.expect", "rules[0] is not a string");
  expect_reject("{\"rules\": [\"assert counter.nope >= 0\"]}",
                "t.expect:rules[0]:1:8", "unknown metric");
  expect_reject("{broken", "t.expect", "bad JSON spec");
}

TEST(check_spec, unreadable_file_is_a_spec_error) {
  EXPECT_THROW(parse_spec_file("/nonexistent/path/x.expect"), spec_error);
}

TEST(check_spec, glob_matching) {
  EXPECT_TRUE(glob_match("experiment:*", "experiment:fig2"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("sweep_point", "sweep_point"));
  EXPECT_TRUE(glob_match("a*c*e", "abcde"));
  EXPECT_FALSE(glob_match("experiment:*", "sweep_point"));
  EXPECT_FALSE(glob_match("a*c", "ab"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("*", ""));
}

TEST(check_spec, metric_path_validation) {
  EXPECT_EQ(validate_metric_path("counter.spt_cache.hits"), "");
  EXPECT_EQ(validate_metric_path("gauge.sched.workers"), "");
  EXPECT_EQ(validate_metric_path("hist.svc.request_ns.p99"), "");
  EXPECT_EQ(validate_metric_path("derived.traversal_passes"), "");
  EXPECT_EQ(validate_metric_path("fit.SvcLoad.qps"), "");
  EXPECT_EQ(validate_metric_path("wall_seconds"), "");
  EXPECT_NE(validate_metric_path("counter.nope"), "");
  EXPECT_NE(validate_metric_path("fit.only_label"), "");
  EXPECT_NE(validate_metric_path("threads.extra"), "");
}

}  // namespace
}  // namespace mcast::check
