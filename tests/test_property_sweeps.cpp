// Parameterized property sweeps (TEST_P): invariants that must hold across
// tree arities/depths, generator seeds and group sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/kary_exact.hpp"
#include "analysis/mapping.hpp"
#include "analysis/reachability.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "graph/dijkstra.hpp"
#include "graph/weights.hpp"
#include "multicast/affinity.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/dynamic_tree.hpp"
#include "multicast/receivers.hpp"
#include "multicast/shared_tree.hpp"
#include "topo/kary.hpp"
#include "topo/tiers.hpp"
#include "topo/transit_stub.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

// ---------------------------------------------------------------- k-ary --

class kary_sweep : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(kary_sweep, closed_forms_and_graph_agree) {
  const auto [k, d] = GetParam();
  const kary_shape shape(k, d);
  const graph g = shape.to_graph();
  EXPECT_EQ(g.node_count(), shape.node_count());
  EXPECT_EQ(g.edge_count(), shape.node_count() - 1);
  EXPECT_TRUE(is_connected(g));
  // Eq 4 boundary identities for every (k, D).
  EXPECT_NEAR(kary_tree_size_leaves(k, d, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(kary_tree_size_leaves(k, d, 1.0), d, 1e-9);
  // All-sites single draw = mean distance.
  EXPECT_NEAR(kary_tree_size_all_sites(k, d, 1.0),
              kary_unicast_mean_all_sites(k, d), 1e-9);
}

TEST_P(kary_sweep, exact_form_is_concave_monotone) {
  const auto [k, d] = GetParam();
  // Monotone non-decreasing in n (strictly until saturation)...
  double prev = -1.0;
  for (double n = 1.0; n <= 4096.0; n *= 2.0) {
    const double l = kary_tree_size_leaves(k, d, n);
    EXPECT_GE(l, prev) << "n=" << n;
    prev = l;
  }
  // ...and concave: the unit-step derivative ΔL̂(n) (Eq 5) decreases in n.
  double prev_delta = 1e300;
  for (double n = 0.0; n <= 4096.0; n = n == 0.0 ? 1.0 : n * 2.0) {
    const double delta = kary_tree_size_delta_leaves(k, d, n);
    EXPECT_LE(delta, prev_delta * (1.0 + 1e-12)) << "concavity violated at n=" << n;
    prev_delta = delta;
  }
}

TEST_P(kary_sweep, extreme_affinity_bounds_uniform_expectation) {
  const auto [k, d] = GetParam();
  const double m_sites = kary_leaf_count(k, d);
  for (double frac : {0.01, 0.1, 0.5}) {
    const std::uint64_t m =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(frac * m_sites));
    const double uniform = kary_tree_size_distinct_leaves(k, d, static_cast<double>(m));
    EXPECT_LE(extreme_affinity_kary_tree_size(k, d, m), uniform * 1.001);
    EXPECT_GE(extreme_disaffinity_kary_tree_size(k, d, m), uniform * 0.999);
  }
}

INSTANTIATE_TEST_SUITE_P(arities_and_depths, kary_sweep,
                         ::testing::Values(std::make_tuple(2u, 4u),
                                           std::make_tuple(2u, 8u),
                                           std::make_tuple(2u, 12u),
                                           std::make_tuple(3u, 4u),
                                           std::make_tuple(3u, 7u),
                                           std::make_tuple(4u, 5u),
                                           std::make_tuple(5u, 4u),
                                           std::make_tuple(8u, 3u)));

// ------------------------------------------------------------ generators --

class generator_sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(generator_sweep, waxman_connected_and_deterministic) {
  const std::uint64_t seed = GetParam();
  waxman_params p;
  p.nodes = 90;
  const graph a = make_waxman(p, seed);
  EXPECT_TRUE(is_connected(a));
  EXPECT_EQ(a.edges(), make_waxman(p, seed).edges());
}

TEST_P(generator_sweep, transit_stub_invariants) {
  const std::uint64_t seed = GetParam();
  transit_stub_params p;
  p.transit_domains = 3;
  p.transit_domain_size = 4;
  p.stubs_per_transit_node = 2;
  p.stub_domain_size = 4;
  const graph g = make_transit_stub(p, seed);
  EXPECT_EQ(g.node_count(), transit_stub_node_count(p));
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(compute_degree_stats(g).min, 1u);
}

TEST_P(generator_sweep, tiers_invariants) {
  const std::uint64_t seed = GetParam();
  tiers_params p;
  p.wan_size = 16;
  p.man_count = 3;
  p.man_size = 6;
  p.lans_per_man = 2;
  p.lan_size = 4;
  const graph g = make_tiers(p, seed);
  EXPECT_EQ(g.node_count(), tiers_node_count(p));
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(seeds, generator_sweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

// -------------------------------------------------- delivery-tree bounds --

class tree_bounds_sweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(tree_bounds_sweep, tree_size_within_theoretical_envelope) {
  const auto [seed, m] = GetParam();
  waxman_params p;
  p.nodes = 150;
  const graph g = make_waxman(p, seed);
  const source_tree tree(g, static_cast<node_id>(seed % g.node_count()));
  rng gen(seed * 31 + 1);
  const std::vector<node_id> receivers =
      sample_distinct(all_sites_except(g, tree.source()), m, gen);
  const std::size_t links = delivery_tree_size(tree, receivers);

  // Lower bound: the longest single path; also at least m links (distinct
  // receivers are distinct tree nodes, each with a distinct parent link...
  // receivers could be each other's ancestors, so the true lower bound is
  // the max distance and the receiver count of any antichain — use max
  // distance and ceil bounds we can prove:
  hop_count dmax = 0;
  std::uint64_t dsum = 0;
  for (node_id v : receivers) {
    dmax = std::max(dmax, tree.distance(v));
    dsum += tree.distance(v);
  }
  EXPECT_GE(links, dmax);
  // Upper bounds: sum of unicast paths, and the node budget.
  EXPECT_LE(links, dsum);
  EXPECT_LE(links, g.node_count() - 1u);
}

INSTANTIATE_TEST_SUITE_P(
    seeds_and_sizes, tree_bounds_sweep,
    ::testing::Combine(::testing::Values(1u, 5u, 9u),
                       ::testing::Values(1u, 5u, 25u, 100u)));

// ------------------------------------------------------- mapping sweeps --

class mapping_sweep : public ::testing::TestWithParam<double> {};

TEST_P(mapping_sweep, round_trip_across_universe_sizes) {
  const double m_sites = GetParam();
  for (double frac : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    const double m = frac * m_sites;
    if (m < 1.0) continue;
    const double n = draws_for_expected_distinct(m_sites, m);
    EXPECT_NEAR(expected_distinct(m_sites, n) / m, 1.0, 1e-9)
        << "M=" << m_sites << " m=" << m;
    EXPECT_GE(n, m - 1e-9) << "with replacement needs at least m draws";
  }
}

INSTANTIATE_TEST_SUITE_P(universe_sizes, mapping_sweep,
                         ::testing::Values(10.0, 100.0, 1e4, 1e6, 1e9));

// ------------------------------------------------- affinity beta ladder --

class beta_sweep : public ::testing::TestWithParam<double> {};

TEST_P(beta_sweep, chain_estimates_stay_in_extreme_envelope) {
  const double beta = GetParam();
  const kary_shape shape(2, 6);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  const kary_distance_oracle oracle(shape);
  affinity_chain_params params;
  params.beta = beta;
  params.burn_in_sweeps = 15;
  params.sample_sweeps = 6;
  rng gen(7);
  const auto est =
      sample_affinity_tree_size(tree, universe, 16, oracle, params, gen);
  rng greedy_gen(9);
  const auto packed = greedy_affinity_trajectory(tree, universe, 16, greedy_gen);
  const auto spread = greedy_disaffinity_trajectory(tree, universe, 16, greedy_gen);
  EXPECT_GE(est.mean_tree_size, static_cast<double>(packed.back()) - 1e-9);
  EXPECT_LE(est.mean_tree_size, static_cast<double>(spread.back()) + 1e-9);
  EXPECT_GT(est.acceptance_rate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(betas, beta_sweep,
                         ::testing::Values(-10.0, -1.0, -0.1, 0.0, 0.1, 1.0,
                                           10.0));

// --------------------------------------- synthetic reachability families --

class reach_sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(reach_sweep, eq23_monotone_concave_saturating_for_all_families) {
  const unsigned depth = GetParam();
  const double anchor = std::pow(2.0, static_cast<double>(depth));
  const std::vector<std::vector<double>> families = {
      synthetic_reachability_exponential(2.0, depth),
      synthetic_reachability_power(3.0, depth, anchor),
      synthetic_reachability_superexponential(std::log(2.0) / depth, depth,
                                              anchor),
  };
  for (const auto& s : families) {
    double budget = 0.0;
    for (double v : s) budget += v;
    double prev = 0.0;
    for (double n = 1.0; n <= 1e12; n *= 10.0) {
      const double l = general_tree_size_leaves(s, n);
      EXPECT_GE(l, prev - 1e-9);
      EXPECT_LE(l, budget * (1.0 + 1e-9));
      prev = l;
    }
    EXPECT_NEAR(general_tree_size_leaves(s, 1e15), budget, budget * 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(depths, reach_sweep, ::testing::Values(8u, 12u, 16u, 20u));

// ------------------------------------------ weighted/dynamic extensions --

class extension_sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(extension_sweep, unit_dijkstra_equals_bfs) {
  const std::uint64_t seed = GetParam();
  waxman_params p;
  p.nodes = 80;
  const graph g = make_waxman(p, seed);
  const edge_weights w(g);
  const weighted_tree wt = dijkstra_from(g, w, static_cast<node_id>(seed % 80));
  const std::vector<hop_count> bd =
      bfs_distances(g, static_cast<node_id>(seed % 80));
  for (node_id v = 0; v < g.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(wt.dist[v], static_cast<double>(bd[v]));
  }
}

TEST_P(extension_sweep, dynamic_tree_tracks_static_rebuild) {
  const std::uint64_t seed = GetParam();
  waxman_params p;
  p.nodes = 60;
  const graph g = make_waxman(p, seed);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  rng gen(seed * 7 + 1);
  std::vector<node_id> members;
  for (int step = 0; step < 300; ++step) {
    if (!members.empty() && gen.chance(0.4)) {
      const std::size_t i = gen.below(members.size());
      d.leave(members[i]);
      members[i] = members.back();
      members.pop_back();
    } else {
      const node_id v = 1 + static_cast<node_id>(gen.below(g.node_count() - 1));
      d.join(v);
      members.push_back(v);
    }
  }
  EXPECT_EQ(d.link_count(), delivery_tree_size(t, members));
}

TEST_P(extension_sweep, shared_tree_ratio_sane_for_all_strategies) {
  const std::uint64_t seed = GetParam();
  waxman_params p;
  p.nodes = 80;
  const graph g = make_waxman(p, seed);
  for (core_strategy s : {core_strategy::random, core_strategy::degree_center,
                          core_strategy::path_center}) {
    const auto rows = compare_source_vs_shared(g, {4, 20}, s, 6, 5, seed);
    for (const auto& row : rows) {
      EXPECT_GT(row.shared_over_source, 0.6);
      EXPECT_LT(row.shared_over_source, 3.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, extension_sweep,
                         ::testing::Values(1u, 3u, 8u, 21u, 55u));

}  // namespace
}  // namespace mcast
