// rng: determinism, ranges, distribution sanity, stream forking.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace mcast {
namespace {

TEST(rng, deterministic_given_seed) {
  rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_diverge) {
  rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(rng, below_respects_bound) {
  rng gen(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(gen.below(bound), bound);
  }
}

TEST(rng, below_zero_throws) {
  rng gen(1);
  EXPECT_THROW(gen.below(0), std::invalid_argument);
}

TEST(rng, below_hits_every_value_of_small_range) {
  rng gen(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(gen.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(rng, below_is_roughly_uniform) {
  rng gen(17);
  constexpr int buckets = 10;
  constexpr int draws = 100000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < draws; ++i) ++count[gen.below(buckets)];
  for (int c : count) {
    EXPECT_GT(c, draws / buckets * 0.9);
    EXPECT_LT(c, draws / buckets * 1.1);
  }
}

TEST(rng, between_inclusive) {
  rng gen(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = gen.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(gen.between(3, 3), 3u);
  EXPECT_THROW(gen.between(4, 3), std::invalid_argument);
}

TEST(rng, uniform_in_unit_interval_with_correct_mean) {
  rng gen(11);
  double sum = 0.0;
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const double u = gen.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(rng, chance_extremes) {
  rng gen(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.chance(0.0));
    EXPECT_TRUE(gen.chance(1.0));
  }
}

TEST(rng, chance_probability) {
  rng gen(4);
  int hits = 0;
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += gen.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(rng, exponential_mean_and_positivity) {
  rng gen(6);
  double sum = 0.0;
  constexpr int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const double v = gen.exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
  EXPECT_THROW(gen.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(gen.exponential(-1.0), std::invalid_argument);
}

TEST(rng, fork_produces_decorrelated_reproducible_streams) {
  rng parent1(77), parent2(77);
  rng child1 = parent1.fork(5);
  rng child2 = parent2.fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1(), child2());

  rng parent3(77);
  rng childA = parent3.fork(1);
  rng childB = parent3.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (childA() == childB()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(rng, satisfies_uniform_random_bit_generator) {
  static_assert(std::uniform_random_bit_generator<rng>);
  SUCCEED();
}

}  // namespace
}  // namespace mcast
