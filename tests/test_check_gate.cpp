// Perf-trajectory gate corpus (check/perf_gate.hpp): synthetic
// baseline-vs-current manifest pairs covering pass, regression beyond
// tolerance in both directions, metric missing from current, and metric
// new since the baseline — plus the `check` verb's exit codes and the
// byte-determinism of its --report output.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/command.hpp"
#include "check/perf_gate.hpp"
#include "check/spec.hpp"
#include "common/json.hpp"

namespace mcast::check {
namespace {

// Minimal manifest with an SvcLoad fit; qps/p99 are the gated metrics.
std::string manifest_text(double qps, double p99_ms, bool with_p99 = true) {
  std::ostringstream out;
  out << "{\"schema\": \"mcast-lab-manifest/2\", \"wall_seconds\": 1.0,\n"
      << " \"cpu_seconds\": 1.0, \"scale\": 0, \"threads\": 2,\n"
      << " \"fits\": [{\"label\": \"SvcLoad\", \"text\": \"synthetic\",\n"
      << "   \"values\": {\"qps\": " << qps;
  if (with_p99) out << ", \"p99_ms\": " << p99_ms;
  out << "}}],\n \"metric_groups\": [], \"metrics\": {\"enabled\": false}}\n";
  return out.str();
}

json::value manifest(double qps, double p99_ms, bool with_p99 = true) {
  return json::parse(manifest_text(qps, p99_ms, with_p99));
}

// 0.25 is exact in binary, so the bounds (750, 10) print crisply under
// the report's %.17g and the boundary tests cannot rot on rounding.
spec gates_spec() {
  return parse_spec(
      "gate fit.SvcLoad.qps higher_better 0.25\n"
      "gate fit.SvcLoad.p99_ms lower_better 0.25\n",
      "g.expect");
}

TEST(check_gate, within_tolerance_passes) {
  // qps may drop 25%, p99 may grow 25%; both stay inside.
  const auto gates =
      eval_gates(gates_spec(), manifest(1000, 8.0), manifest(800, 9.5));
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_EQ(gates[0].status, "ok");
  EXPECT_EQ(gates[1].status, "ok");
  EXPECT_DOUBLE_EQ(gates[0].baseline, 1000.0);
  EXPECT_DOUBLE_EQ(gates[0].current, 800.0);
  EXPECT_TRUE(gate_violations(gates).empty());
}

TEST(check_gate, boundary_values_pass) {
  // Exactly at the bound is not a regression (strict inequality).
  const auto gates =
      eval_gates(gates_spec(), manifest(1000, 8.0), manifest(750, 10.0));
  EXPECT_EQ(gates[0].status, "ok");
  EXPECT_EQ(gates[1].status, "ok");
}

TEST(check_gate, higher_better_regression_beyond_tolerance) {
  const auto gates =
      eval_gates(gates_spec(), manifest(1000, 8.0), manifest(749, 8.0));
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_EQ(gates[0].status, "regression");
  EXPECT_EQ(gates[1].status, "ok");
  const auto v = gate_violations(gates);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 1);
  EXPECT_EQ(v[0].rule, "gate fit.SvcLoad.qps higher_better 0.25");
  EXPECT_EQ(v[0].message,
            "fit.SvcLoad.qps regressed: current 749 vs baseline 1000 "
            "(must stay >= 750 at tolerance 0.25)");
}

TEST(check_gate, lower_better_regression_beyond_tolerance) {
  const auto gates =
      eval_gates(gates_spec(), manifest(1000, 8.0), manifest(1000, 10.1));
  EXPECT_EQ(gates[0].status, "ok");
  EXPECT_EQ(gates[1].status, "regression");
  const auto v = gate_violations(gates);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("must stay <= 10"), std::string::npos)
      << v[0].message;
}

TEST(check_gate, metric_missing_from_current_fails) {
  // The current run stopped emitting p99 — exactly the silent-regression
  // class the gate exists to catch.
  const auto gates = eval_gates(gates_spec(), manifest(1000, 8.0),
                                manifest(1000, 0.0, /*with_p99=*/false));
  EXPECT_EQ(gates[1].status, "missing");
  const auto v = gate_violations(gates);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].message,
            "fit.SvcLoad.p99_ms is gated but missing from the current "
            "manifest");
}

TEST(check_gate, metric_new_since_baseline_passes) {
  // Baseline predates the metric: "new" status, no violation, so adding
  // a metric cannot break CI before the baseline refresh lands.
  const auto gates = eval_gates(
      gates_spec(), manifest(1000, 0.0, /*with_p99=*/false),
      manifest(1000, 8.0));
  EXPECT_EQ(gates[1].status, "new");
  EXPECT_TRUE(gate_violations(gates).empty());
}

// ---------------------------------------------------------------------------
// The `check` verb end to end: exit codes and report bytes.

class check_gate_cli : public ::testing::Test {
 protected:
  std::string path(const char* name) const {
    return ::testing::TempDir() + "check_gate_" + name;
  }

  std::string write(const char* name, const std::string& text) const {
    const std::string p = path(name);
    std::ofstream f(p, std::ios::trunc);
    f << text;
    return p;
  }

  static std::string slurp(const std::string& p) {
    std::ifstream f(p);
    std::ostringstream out;
    out << f.rdbuf();
    return out.str();
  }
};

TEST_F(check_gate_cli, exit_codes_and_deterministic_report) {
  const std::string expect = write(
      "g.expect", "gate fit.SvcLoad.qps higher_better 0.10\n");
  const std::string base = write("base.json", manifest_text(1000, 8.0));
  const std::string good = write("good.json", manifest_text(990, 8.0));
  const std::string bad = write("bad.json", manifest_text(500, 8.0));

  EXPECT_EQ(run_check({"--manifest", good, "--expect", expect,
                       "--baseline", base}),
            exit_ok);
  EXPECT_EQ(run_check({"--manifest", bad, "--expect", expect,
                       "--baseline", base}),
            exit_violations);

  // Gate rules without --baseline: spec error, not a silent pass.
  EXPECT_EQ(run_check({"--manifest", good, "--expect", expect}),
            exit_spec_error);

  // The machine-readable report is byte-deterministic across runs.
  const std::string r1 = path("report1.json"), r2 = path("report2.json");
  EXPECT_EQ(run_check({"--manifest", bad, "--expect", expect,
                       "--baseline", base, "--report", r1}),
            exit_violations);
  EXPECT_EQ(run_check({"--manifest", bad, "--expect", expect,
                       "--baseline=" + base, "--report=" + r2}),
            exit_violations);
  const std::string bytes = slurp(r1);
  EXPECT_EQ(bytes, slurp(r2));
  EXPECT_FALSE(bytes.empty());

  const json::value report = json::parse(bytes);
  ASSERT_NE(report.get("schema"), nullptr);
  EXPECT_EQ(report.get("schema")->as_string(), report_schema);
  EXPECT_FALSE(report.get("pass")->as_bool());
  EXPECT_DOUBLE_EQ(report.get("rules")->as_number(), 1.0);
  ASSERT_EQ(report.get("violations")->items().size(), 1u);
  const json::value& gate = report.get("gates")->items().at(0);
  EXPECT_EQ(gate.get("status")->as_string(), "regression");
  EXPECT_EQ(gate.get("direction")->as_string(), "higher_better");
  EXPECT_DOUBLE_EQ(gate.get("baseline")->as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(gate.get("current")->as_number(), 500.0);
}

TEST_F(check_gate_cli, new_metric_report_and_note) {
  const std::string expect = write(
      "n.expect",
      "gate fit.SvcLoad.qps higher_better 0.10\n"
      "gate fit.SvcLoad.p99_ms lower_better 0.25\n");
  const std::string base =
      write("n_base.json", manifest_text(1000, 0.0, /*with_p99=*/false));
  const std::string cur = write("n_cur.json", manifest_text(1000, 8.0));
  const std::string report = path("n_report.json");
  EXPECT_EQ(run_check({"--manifest", cur, "--expect", expect,
                       "--baseline", base, "--report", report}),
            exit_ok);
  const json::value doc = json::parse(slurp(report));
  EXPECT_TRUE(doc.get("pass")->as_bool());
  EXPECT_EQ(doc.get("gates")->items().at(1).get("status")->as_string(),
            "new");
}

TEST_F(check_gate_cli, input_errors_are_spec_errors) {
  const std::string expect = write("e.expect", "assert threads >= 1\n");
  const std::string good = write("e_good.json", manifest_text(1, 1));
  EXPECT_EQ(run_check({"--manifest", good, "--expect", expect}), exit_ok);

  // Unreadable / malformed artifacts: exit 2, never a crash.
  EXPECT_EQ(run_check({"--manifest", path("absent.json"),
                       "--expect", expect}),
            exit_spec_error);
  const std::string junk = write("junk.json", "{not json");
  EXPECT_EQ(run_check({"--manifest", junk, "--expect", expect}),
            exit_spec_error);
  const std::string bad_spec = write("bad.expect", "frobnicate\n");
  EXPECT_EQ(run_check({"--manifest", good, "--expect", bad_spec}),
            exit_spec_error);

  // Usage errors throw; the lab CLI maps them to exit 1.
  EXPECT_THROW(run_check({"--expect", expect}), std::invalid_argument);
  EXPECT_THROW(run_check({"--manifest", good}), std::invalid_argument);
  EXPECT_THROW(run_check({"--manifest", good, "--expect", expect,
                          "--bogus", "x"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcast::check
