// Delivery-tree repair: receiver classification, repair cost accounting,
// and the "no failed element in a repaired tree" invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/degraded.hpp"
#include "fault/failure_model.hpp"
#include "graph/builder.hpp"
#include "multicast/repair.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

bool contains(const std::vector<node_id>& xs, node_id v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

TEST(dynamic_tree_hooks, links_sites_and_uses_link) {
  const graph g = make_star(5);  // center 0, spokes 1..4
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  EXPECT_TRUE(d.links().empty());
  EXPECT_TRUE(d.receiver_sites().empty());

  d.join(3);
  d.join(1);
  d.join(1);
  EXPECT_EQ(d.links(), (std::vector<edge>{{0, 1}, {0, 3}}));
  EXPECT_EQ(d.receiver_sites(), (std::vector<node_id>{1, 3}));
  EXPECT_TRUE(d.uses_link(0, 3));
  EXPECT_TRUE(d.uses_link(3, 0));  // orientation-free
  EXPECT_FALSE(d.uses_link(0, 2));
  EXPECT_FALSE(d.uses_link(0, 4));

  d.leave(3);
  EXPECT_EQ(d.links(), (std::vector<edge>{{0, 1}}));
  EXPECT_FALSE(d.uses_link(0, 3));
}

TEST(repair, classifies_unaffected_rerouted_partitioned) {
  // 0-1-2-3 path plus a detour 1-4-3, and a pendant 5 off node 2:
  //
  //   0 - 1 - 2 - 3
  //        \     /
  //         4 --
  //   2 - 5
  graph_builder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(1, 4);
  b.add_edge(4, 3);
  b.add_edge(2, 5);
  const graph g = b.build();

  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  d.join(1);  // one hop, nowhere near the failure
  d.join(3);  // served via 0-1-2-3 (lowest-id parent), will reroute via 4
  d.join(5);  // behind link 2-5, will be partitioned
  d.join(5);  //   ...with multiplicity 2

  degraded_view view(g);
  view.fail_link(2, 3);
  view.fail_link(2, 5);

  const repaired_tree r = repair_delivery_tree(d, view);
  EXPECT_FALSE(r.report.source_lost);
  EXPECT_TRUE(contains(r.report.unaffected, 1));
  EXPECT_TRUE(contains(r.report.rerouted, 3));
  EXPECT_TRUE(contains(r.report.partitioned, 5));
  EXPECT_EQ(r.report.receivers_lost, 2u);  // both instances at site 5

  // New tree: 0-1 (for receiver 1) and 0-1-4-3 (for receiver 3).
  EXPECT_EQ(r.delivery->links(), (std::vector<edge>{{0, 1}, {1, 4}, {3, 4}}));
  EXPECT_EQ(r.delivery->receiver_count(), 2u);
  // Old links 1-2, 2-3, 2-5 gone; new links 1-4, 3-4 added; 0-1 kept.
  EXPECT_EQ(r.report.links_removed, 3u);
  EXPECT_EQ(r.report.links_added, 2u);
  EXPECT_EQ(r.report.churn(), 5u);
}

TEST(repair, source_partitioned_drops_everyone) {
  const graph g = make_path(4);  // 0-1-2-3
  const source_tree t(g, 1);
  dynamic_delivery_tree d(t);
  d.join(0);
  d.join(3);

  degraded_view view(g);
  view.fail_node(1);  // the source itself dies

  const repaired_tree r = repair_delivery_tree(d, view);
  EXPECT_TRUE(r.report.source_lost);
  EXPECT_TRUE(r.report.unaffected.empty());
  EXPECT_TRUE(r.report.rerouted.empty());
  EXPECT_EQ(r.report.partitioned, (std::vector<node_id>{0, 3}));
  EXPECT_EQ(r.report.receivers_lost, 2u);
  EXPECT_EQ(r.delivery->receiver_count(), 0u);
  EXPECT_TRUE(r.delivery->links().empty());
  EXPECT_EQ(r.report.links_removed, 3u);  // the whole old tree is torn down
  EXPECT_EQ(r.report.links_added, 0u);
}

TEST(repair, can_empty_a_tree_without_killing_the_source) {
  const graph g = make_path(3);  // 0-1-2
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  d.join(2);

  degraded_view view(g);
  view.fail_link(0, 1);  // source alive but cut off from its one receiver

  const repaired_tree r = repair_delivery_tree(d, view);
  EXPECT_FALSE(r.report.source_lost);
  EXPECT_EQ(r.report.partitioned, (std::vector<node_id>{2}));
  EXPECT_EQ(r.delivery->receiver_count(), 0u);
  EXPECT_EQ(r.delivery->link_count(), 0u);
  EXPECT_EQ(r.report.churn(), 2u);  // links 0-1 and 1-2 removed, none added
}

TEST(repair, recovery_restores_partitioned_receiver) {
  const graph g = make_path(3);  // 0-1-2
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  d.join(2);

  degraded_view view(g);
  view.fail_link(1, 2);
  const repaired_tree broken = repair_delivery_tree(d, view);
  EXPECT_EQ(broken.delivery->receiver_count(), 0u);

  // The link comes back; repairing the (now empty) tree cannot resurrect
  // the dropped receiver — the session layer re-joins it (tested in
  // test_session) — but repairing the ORIGINAL tree in the healed view
  // restores the full path, with zero churn against the original.
  view.restore_link(1, 2);
  const repaired_tree healed = repair_delivery_tree(d, view);
  EXPECT_TRUE(contains(healed.report.unaffected, 2));
  EXPECT_EQ(healed.delivery->receiver_count(), 1u);
  EXPECT_EQ(healed.delivery->links(), (std::vector<edge>{{0, 1}, {1, 2}}));
  EXPECT_EQ(healed.report.churn(), 0u);
}

TEST(repair, preserves_receiver_multiplicity) {
  const graph g = make_ring(5);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  d.join(2);
  d.join(2);
  d.join(2);
  d.join(3);

  degraded_view view(g);
  view.fail_link(1, 2);  // 2 reroutes the long way: 0-4-3-2

  const repaired_tree r = repair_delivery_tree(d, view);
  EXPECT_EQ(r.delivery->receiver_count(), 4u);
  EXPECT_EQ(r.delivery->receivers_at(2), 3u);
  EXPECT_EQ(r.delivery->receivers_at(3), 1u);
  EXPECT_TRUE(contains(r.report.rerouted, 2));
}

TEST(repair, never_leaves_a_failed_element_in_the_tree) {
  // Property sweep: random topologies x random failure scenarios. The
  // repaired tree must never traffic over a failed link or failed node,
  // and its receiver accounting must match the classification.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    waxman_params wp;
    wp.nodes = 80;
    const graph g = make_waxman(wp, seed);

    const source_tree t(g, 0);
    dynamic_delivery_tree d(t);
    std::size_t joined = 0;
    for (node_id v = 1; v < g.node_count(); v += 3) {
      if (t.distance(v) != unreachable) {
        d.join(v);
        ++joined;
      }
    }
    ASSERT_GT(joined, 0u);

    degraded_view view(g);
    view.apply(random_link_failures(g, 0.15, seed * 977));
    const failure_set hubs = targeted_hub_failures(g, 2);
    for (node_id v : hubs.nodes) {
      if (v != 0) view.fail_node(v);  // keep the source alive
    }

    const repaired_tree r = repair_delivery_tree(d, view);
    for (const edge& e : r.delivery->links()) {
      EXPECT_TRUE(view.usable(e.a, e.b))
          << "seed " << seed << ": repaired tree uses failed element "
          << e.a << "-" << e.b;
    }
    EXPECT_EQ(r.report.unaffected.size() + r.report.rerouted.size(),
              r.delivery->distinct_receiver_sites());
    EXPECT_EQ(r.delivery->receiver_count() + r.report.receivers_lost, joined);

    // Determinism: repairing the same tree against the same view twice
    // yields identical trees and identical reports.
    const repaired_tree r2 = repair_delivery_tree(d, view);
    EXPECT_EQ(r.delivery->links(), r2.delivery->links());
    EXPECT_EQ(r.report.unaffected, r2.report.unaffected);
    EXPECT_EQ(r.report.rerouted, r2.report.rerouted);
    EXPECT_EQ(r.report.partitioned, r2.report.partitioned);
    EXPECT_EQ(r.report.churn(), r2.report.churn());
  }
}

}  // namespace
}  // namespace mcast
