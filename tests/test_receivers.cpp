// Receiver samplers: universes, distinctness, uniformity, determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "multicast/receivers.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(receivers, all_sites_except_excludes_source) {
  const graph g = make_ring(5);
  const std::vector<node_id> u = all_sites_except(g, 2);
  EXPECT_EQ(u.size(), 4u);
  EXPECT_EQ(std::count(u.begin(), u.end(), 2u), 0);
  EXPECT_THROW(all_sites_except(g, 9), std::out_of_range);
}

TEST(receivers, leaf_sites_enumerates_range) {
  const kary_shape s(2, 3);
  const std::vector<node_id> u = leaf_sites(s.first_leaf(), s.leaf_count());
  ASSERT_EQ(u.size(), 8u);
  EXPECT_EQ(u.front(), 7u);
  EXPECT_EQ(u.back(), 14u);
}

TEST(receivers, sample_distinct_properties) {
  const graph g = make_ring(30);
  const std::vector<node_id> u = all_sites_except(g, 0);
  rng gen(1);
  const std::vector<node_id> s = sample_distinct(u, 12, gen);
  EXPECT_EQ(s.size(), 12u);
  const std::set<node_id> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 12u) << "must be distinct";
  for (node_id v : s) {
    EXPECT_NE(v, 0u);
    EXPECT_LT(v, 30u);
  }
}

TEST(receivers, sample_distinct_full_universe_is_permutation) {
  std::vector<node_id> u = {3, 5, 9, 11};
  rng gen(2);
  std::vector<node_id> s = sample_distinct(u, 4, gen);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, u);
}

TEST(receivers, sample_distinct_too_many_throws) {
  rng gen(3);
  EXPECT_THROW(sample_distinct({1, 2}, 3, gen), std::invalid_argument);
}

TEST(receivers, sample_distinct_is_uniform) {
  // Each of 10 sites should appear in a 3-subset with probability 3/10.
  std::vector<node_id> u(10);
  for (node_id i = 0; i < 10; ++i) u[i] = i;
  rng gen(4);
  std::vector<int> hits(10, 0);
  constexpr int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    for (node_id v : sample_distinct(u, 3, gen)) ++hits[v];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.02);
  }
}

TEST(receivers, sample_with_replacement_properties) {
  std::vector<node_id> u = {7, 8, 9};
  rng gen(5);
  const std::vector<node_id> s = sample_with_replacement(u, 1000, gen);
  EXPECT_EQ(s.size(), 1000u);
  for (node_id v : s) {
    EXPECT_GE(v, 7u);
    EXPECT_LE(v, 9u);
  }
  // With 1000 draws from 3 sites, repeats are certain.
  const std::set<node_id> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(receivers, sample_with_replacement_empty_universe_throws) {
  rng gen(6);
  EXPECT_THROW(sample_with_replacement({}, 1, gen), std::invalid_argument);
}

TEST(receivers, zero_sized_samples) {
  std::vector<node_id> u = {1, 2, 3};
  rng gen(7);
  EXPECT_TRUE(sample_distinct(u, 0, gen).empty());
  EXPECT_TRUE(sample_with_replacement(u, 0, gen).empty());
}

TEST(receivers, samplers_deterministic_given_rng_state) {
  std::vector<node_id> u(50);
  for (node_id i = 0; i < 50; ++i) u[i] = i;
  rng a(9), b(9);
  EXPECT_EQ(sample_distinct(u, 20, a), sample_distinct(u, 20, b));
  EXPECT_EQ(sample_with_replacement(u, 20, a),
            sample_with_replacement(u, 20, b));
}

}  // namespace
}  // namespace mcast
