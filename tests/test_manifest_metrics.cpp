// Manifest/2 metrics end-to-end: a real experiment run produces a
// manifest whose metrics section round-trips through the JSON layer and
// passes validate_manifest, and — design rule #1 of src/obs — the
// experiment's *output* is byte-identical whether the obs registry is
// recording or runtime-disabled, and across thread counts.
//
// (The compile-time kill switch MCAST_OBS_DISABLED is the same comparison
// across two builds; CI's cross-build job covers that configuration.)
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "experiments.hpp"

#include "lab/engine.hpp"
#include "lab/json.hpp"
#include "lab/manifest.hpp"
#include "lab/registry.hpp"
#include "obs/metrics.hpp"

namespace mcast::lab {
namespace {

const registry& suite() {
  static registry* reg = [] {
    auto* r = new registry();
    register_builtin(*r);
    return r;
  }();
  return *reg;
}

run_options smoke_options(std::size_t threads = 1) {
  run_options opts;
  opts.scale = 0;
  opts.threads = threads;
  opts.banner = false;
  return opts;
}

std::string rendered_output(const run_outcome& outcome) {
  std::ostringstream out;
  outcome.output.render(out);
  return out.str();
}

TEST(manifest_metrics, experiment_manifest_round_trips_and_validates) {
  obs::set_enabled(true);
  const experiment* exp = suite().find("fig4");
  ASSERT_NE(exp, nullptr);
  const run_outcome outcome = run_experiment(*exp, smoke_options());

  const json::value doc = json::parse(render_manifest(outcome.manifest));
  EXPECT_TRUE(validate_manifest(doc).empty());
  EXPECT_EQ(doc.get("schema")->as_string(), "mcast-lab-manifest/2");

  // fig4 declares the scheduler group and fans its panels over it, so the
  // round-tripped metrics must show actual scheduler activity.
  ASSERT_FALSE(doc.get("metric_groups")->items().empty());
  EXPECT_EQ(doc.get("metric_groups")->items()[0].as_string(), "scheduler");
  const json::value* metrics = doc.get("metrics");
  ASSERT_NE(metrics, nullptr);
  if (obs::compiled_in) {
    EXPECT_TRUE(metrics->get("enabled")->as_bool());
    EXPECT_GT(metrics->get("counters")->get("sched.tasks")->as_number(), 0.0);
    EXPECT_GT(
        metrics->get("histograms")->get("sched.task_ns")->get("count")->as_number(),
        0.0);
    EXPECT_GT(metrics->get("derived")->get("scheduler_busy_fraction")->as_number(),
              0.0);
  } else {
    EXPECT_FALSE(metrics->get("enabled")->as_bool());
  }
}

TEST(manifest_metrics, monte_carlo_run_populates_cache_and_traversal) {
  if (!obs::compiled_in) GTEST_SKIP() << "built with MCAST_OBS_DISABLED";
  obs::set_enabled(true);
  const experiment* exp = suite().find("fig1");
  ASSERT_NE(exp, nullptr);
  const run_outcome outcome = run_experiment(*exp, smoke_options());
  const obs::metrics_snapshot& s = outcome.manifest.metrics;
  EXPECT_GT(s.at(obs::counter::bfs_passes), 0u);
  EXPECT_GT(s.at(obs::counter::nodes_visited), 0u);
  EXPECT_GT(s.at(obs::counter::edges_scanned), 0u);
  EXPECT_GT(s.at(obs::counter::mc_source_tasks), 0u);
  EXPECT_GT(s.at(obs::counter::spt_cache_misses), 0u);
  EXPECT_GT(s.at(obs::histogram::visited_per_pass).count, 0u);
}

// Design rule #1: recording metrics must not change a single output byte.
TEST(manifest_metrics, output_bytes_identical_with_obs_on_and_off) {
  const experiment* exp = suite().find("fig1");
  ASSERT_NE(exp, nullptr);

  obs::set_enabled(true);
  const std::string with_obs =
      rendered_output(run_experiment(*exp, smoke_options()));

  obs::set_enabled(false);
  const std::string without_obs =
      rendered_output(run_experiment(*exp, smoke_options()));
  obs::set_enabled(true);

  EXPECT_EQ(with_obs, without_obs);
  EXPECT_FALSE(with_obs.empty());
}

TEST(manifest_metrics, output_bytes_identical_across_thread_counts) {
  obs::set_enabled(true);
  const experiment* exp = suite().find("fig1");
  ASSERT_NE(exp, nullptr);
  const std::string serial =
      rendered_output(run_experiment(*exp, smoke_options(1)));
  const std::string threaded =
      rendered_output(run_experiment(*exp, smoke_options(4)));
  EXPECT_EQ(serial, threaded);
}

TEST(manifest_metrics, disabled_run_reports_disabled_metrics) {
  if (!obs::compiled_in) GTEST_SKIP() << "built with MCAST_OBS_DISABLED";
  const experiment* exp = suite().find("fig4");
  ASSERT_NE(exp, nullptr);
  obs::set_enabled(false);
  const run_outcome outcome = run_experiment(*exp, smoke_options());
  obs::set_enabled(true);
  const json::value doc = json::parse(render_manifest(outcome.manifest));
  EXPECT_TRUE(validate_manifest(doc).empty());
  EXPECT_FALSE(doc.get("metrics")->get("enabled")->as_bool());
  EXPECT_DOUBLE_EQ(
      doc.get("metrics")->get("counters")->get("sched.tasks")->as_number(),
      0.0);
}

}  // namespace
}  // namespace mcast::lab
