// Contract of the retry client (service/client.hpp):
//   * the idempotency whitelist matches the query catalog, treats
//     unparseable lines as safe, and excludes unknown ops;
//   * connect-refused attempts retry up to max_attempts;
//   * typed retryable errors (overloaded/shed) retry and can recover;
//   * typed final errors and non-idempotent ambiguous failures do not;
//   * the jittered backoff schedule is a pure function of the seed.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"

namespace mcast::service {
namespace {

/// A port that was just bound and released: connecting to it is refused.
std::uint16_t dead_port() {
  const net::listen_socket listener = net::listen_loopback(0);
  return listener.port;
}

net::server_config tiny_config() {
  net::server_config config;
  config.port = 0;
  config.workers = 1;
  config.queue_capacity = 8;
  return config;
}

TEST(idempotency, catalog_ops_are_whitelisted) {
  EXPECT_TRUE(idempotent_request("{\"op\":\"lmhat\",\"k\":2}"));
  EXPECT_TRUE(idempotent_request("{\"op\":\"lm_estimate\"}"));
  EXPECT_TRUE(idempotent_request("{\"op\":\"reachability\"}"));
  EXPECT_TRUE(idempotent_request("{\"op\":\"metrics\"}"));
  EXPECT_TRUE(idempotent_request("{\"op\":\"healthz\"}"));
}

TEST(idempotency, unknown_ops_are_not) {
  EXPECT_FALSE(idempotent_request("{\"op\":\"mutate\"}"));
  EXPECT_FALSE(idempotent_request("{\"op\":\"\"}"));
}

TEST(idempotency, unparseable_lines_are_safe) {
  // The server answers these with a deterministic parse_error without
  // executing anything, so re-sending cannot double-execute.
  EXPECT_TRUE(idempotent_request("not json"));
  EXPECT_TRUE(idempotent_request(""));
  EXPECT_TRUE(idempotent_request("[1,2,3]"));
  EXPECT_TRUE(idempotent_request("{\"op\":42}"));
}

TEST(idempotency, retryable_codes_are_exactly_the_refusals) {
  EXPECT_TRUE(retryable_error_code("overloaded"));
  EXPECT_TRUE(retryable_error_code("shed"));
  EXPECT_FALSE(retryable_error_code("parse_error"));
  EXPECT_FALSE(retryable_error_code("internal_error"));
  EXPECT_FALSE(retryable_error_code("deadline_exceeded"));
  EXPECT_FALSE(retryable_error_code(""));
}

TEST(retry_client_test, connect_refused_retries_then_reports) {
  retry_policy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 0;
  policy.backoff_max_ms = 0;
  retry_client client(dead_port(), policy);
  const call_result result = client.call("{\"op\":\"healthz\"}");
  EXPECT_EQ(result.status, call_status::connect_refused);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_TRUE(result.response.empty());
  EXPECT_FALSE(result.ok());
}

TEST(retry_client_test, healthy_server_answers_on_the_first_attempt) {
  auto svc = std::make_shared<query_service>();
  net::line_server server(tiny_config(), [svc](const std::string& line) {
    return svc->handle(line);
  });
  retry_client client(server.port());
  const call_result result = client.call("{\"op\":\"healthz\"}");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_NE(result.response.find("\"ok\":true"), std::string::npos)
      << result.response;

  // The connection is cached: a second call reuses it.
  const call_result again = client.call("{\"op\":\"healthz\"}");
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(server.stats().accepted, 1u);
}

TEST(retry_client_test, typed_retryable_error_recovers_after_backoff) {
  // The first two responses are `overloaded` refusals; the third is ok.
  std::atomic<int> calls{0};
  net::line_server server(tiny_config(), [&calls](const std::string&) {
    return ++calls <= 2
               ? error_response(error_code::overloaded, "come back later")
               : std::string("{\"ok\":true,\"value\":1}");
  });
  retry_policy policy;
  policy.max_attempts = 4;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 2;
  retry_client client(server.port(), policy);
  const call_result result = client.call("{\"op\":\"healthz\"}");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 3);
}

TEST(retry_client_test, typed_retryable_error_exhausts_attempts) {
  net::line_server server(tiny_config(), [](const std::string&) {
    return error_response(error_code::shed, "always shedding");
  });
  retry_policy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 0;
  policy.backoff_max_ms = 0;
  retry_client client(server.port(), policy);
  const call_result result = client.call("{\"op\":\"lm_estimate\"}");
  EXPECT_EQ(result.status, call_status::server_error);
  EXPECT_EQ(result.error_code, "shed");
  EXPECT_EQ(result.attempts, 3);
}

TEST(retry_client_test, typed_final_error_does_not_retry) {
  net::line_server server(tiny_config(), [](const std::string&) {
    return error_response(error_code::internal_error, "boom");
  });
  retry_policy policy;
  policy.max_attempts = 4;
  retry_client client(server.port(), policy);
  const call_result result = client.call("{\"op\":\"healthz\"}");
  EXPECT_EQ(result.status, call_status::server_error);
  EXPECT_EQ(result.error_code, "internal_error");
  EXPECT_EQ(result.attempts, 1);
}

TEST(retry_client_test, timeout_retries_only_idempotent_requests) {
  // A bare listener: the kernel completes the TCP handshake from the
  // backlog and buffers our bytes, but no response ever comes.
  const net::listen_socket listener = net::listen_loopback(0);
  retry_policy policy;
  policy.max_attempts = 2;
  policy.attempt_timeout_ms = 80;
  policy.backoff_base_ms = 0;
  policy.backoff_max_ms = 0;

  retry_client idempotent(listener.port, policy);
  const call_result safe = idempotent.call("{\"op\":\"healthz\"}");
  EXPECT_EQ(safe.status, call_status::timeout);
  EXPECT_EQ(safe.attempts, 2);

  retry_client cautious(listener.port, policy);
  const call_result unsafe = cautious.call("{\"op\":\"mutate\"}");
  EXPECT_EQ(unsafe.status, call_status::timeout);
  EXPECT_EQ(unsafe.attempts, 1) << "ambiguous failure must not re-send";

  // retry_nonidempotent opts back in.
  retry_policy reckless = policy;
  reckless.retry_nonidempotent = true;
  retry_client opted_in(listener.port, reckless);
  const call_result resent = opted_in.call("{\"op\":\"mutate\"}");
  EXPECT_EQ(resent.status, call_status::timeout);
  EXPECT_EQ(resent.attempts, 2);
}

TEST(retry_client_test, trace_base_tags_every_attempt) {
  // Capture what each attempt actually sent; refuse twice, then succeed.
  std::mutex mu;
  std::vector<std::string> received;
  net::line_server server(
      tiny_config(), [&mu, &received](const std::string& line) {
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(line);
        return received.size() <= 2
                   ? error_response(error_code::overloaded, "busy")
                   : std::string("{\"ok\":true}");
      });
  retry_policy policy;
  policy.max_attempts = 4;
  policy.backoff_base_ms = 0;
  policy.backoff_max_ms = 0;
  policy.trace_base = "call";
  retry_client client(server.port(), policy);
  const call_result result = client.call("{\"op\":\"healthz\"}");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 3);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_NE(received[0].find("\"trace\":\"call-a1\""), std::string::npos)
      << received[0];
  EXPECT_NE(received[1].find("\"trace\":\"call-a2\""), std::string::npos)
      << received[1];
  EXPECT_NE(received[2].find("\"trace\":\"call-a3\""), std::string::npos)
      << received[2];
}

TEST(retry_client_test, existing_trace_field_wins_over_trace_base) {
  std::mutex mu;
  std::vector<std::string> received;
  net::line_server server(
      tiny_config(), [&mu, &received](const std::string& line) {
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(line);
        return std::string("{\"ok\":true}");
      });
  retry_policy policy;
  policy.trace_base = "call";
  retry_client client(server.port(), policy);
  const call_result result =
      client.call("{\"op\":\"healthz\",\"trace\":\"mine-a7\"}");
  EXPECT_TRUE(result.ok());
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_NE(received[0].find("\"trace\":\"mine-a7\""), std::string::npos)
      << received[0];
  EXPECT_EQ(received[0].find("call-a1"), std::string::npos) << received[0];
}

TEST(retry_client_test, server_echoes_the_attempt_token) {
  // Through the real service: the token is part of the request bytes, so
  // the response carries it back and the caller can join client-side
  // attempts with server-side access-log records.
  auto svc = std::make_shared<query_service>();
  net::line_server server(tiny_config(), [svc](const std::string& line) {
    return svc->handle(line);
  });
  retry_policy policy;
  policy.trace_base = "q";
  retry_client client(server.port(), policy);
  const call_result result =
      client.call("{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1,10]}");
  EXPECT_TRUE(result.ok());
  EXPECT_NE(result.response.find("\"trace\":\"q-a1\""), std::string::npos)
      << result.response;
}

TEST(retry_client_test, backoff_schedule_is_seeded_and_deterministic) {
  retry_policy policy;
  policy.max_attempts = 4;
  policy.backoff_base_ms = 4;
  policy.backoff_max_ms = 16;
  policy.seed = 1234;
  const std::uint16_t port = dead_port();

  retry_client a(port, policy);
  retry_client b(port, policy);
  const call_result ra = a.call("{\"op\":\"healthz\"}");
  const call_result rb = b.call("{\"op\":\"healthz\"}");
  EXPECT_EQ(ra.status, call_status::connect_refused);
  EXPECT_EQ(ra.attempts, 4);
  EXPECT_EQ(ra.backoff_total_ms, rb.backoff_total_ms);
}

}  // namespace
}  // namespace mcast::service
