// JSON layer + run-manifest schema checks: dump/parse round-trips, the
// manifest document built from a run_record validates cleanly, and
// validate_manifest is loud about every missing or ill-typed field.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "lab/json.hpp"
#include "lab/manifest.hpp"

namespace mcast::lab {
namespace {

TEST(lab_json, parse_dump_round_trip) {
  const std::string text =
      "{\"a\": 1, \"b\": [true, false, null], \"c\": {\"x\": \"s\"},"
      " \"d\": -2.5e3, \"e\": \"\\u00e9\\n\"}";
  const json::value v = json::parse(text);
  EXPECT_DOUBLE_EQ(v.get("a")->as_number(), 1.0);
  EXPECT_EQ(v.get("b")->items().size(), 3u);
  EXPECT_TRUE(v.get("b")->items()[0].as_bool());
  EXPECT_TRUE(v.get("b")->items()[2].is(json::value::kind::null));
  EXPECT_EQ(v.get("c")->get("x")->as_string(), "s");
  EXPECT_DOUBLE_EQ(v.get("d")->as_number(), -2500.0);
  EXPECT_EQ(v.get("e")->as_string(), "\xc3\xa9\n");

  // dump -> parse -> dump must be a fixed point (deterministic layout).
  const std::string once = json::dump(v);
  const std::string twice = json::dump(json::parse(once));
  EXPECT_EQ(once, twice);
}

TEST(lab_json, parse_rejects_malformed) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated",
        "{\"a\":1,}"}) {
    EXPECT_THROW(json::parse(bad), std::invalid_argument) << bad;
  }
}

run_record sample_record() {
  run_record r;
  r.experiment_id = "fig2";
  r.title = "Fig 2";
  r.claim = "h(x) vs x";
  r.scale = 0;
  r.threads = 4;
  r.use_spt_cache = true;
  r.parameters.set("points", std::uint64_t{20});
  r.parameters.set("seed", std::uint64_t{1999});
  r.parameters.set("horizon", 2.5);
  r.git_revision = "deadbeef";
  r.timestamp_utc = "2026-08-06T12:00:00Z";
  r.wall_seconds = 0.25;
  r.cpu_seconds = 0.5;
  fit_entry f;
  f.label = "Fig2/k=4,D=5";
  f.text = "slope_ratio=1.01 R2=0.999";
  f.values = {{"slope_ratio", 1.01}, {"R2", 0.999}};
  r.fits.push_back(f);
  r.series_summary = {{"k=4 D=5  (h(x) vs x)", 20}};
  r.metric_groups = {"scheduler"};
  r.metrics.counters[static_cast<std::size_t>(obs::counter::sched_tasks)] = 6;
  return r;
}

TEST(lab_manifest, record_round_trips_and_validates) {
  const run_record r = sample_record();
  const std::string text = render_manifest(r);
  const json::value doc = json::parse(text);

  EXPECT_EQ(doc.get("schema")->as_string(), manifest_schema);
  EXPECT_EQ(doc.get("experiment")->as_string(), "fig2");
  EXPECT_EQ(doc.get("scale")->as_number(), 0.0);
  EXPECT_EQ(doc.get("threads")->as_number(), 4.0);
  // Seeds are surfaced both inside `parameters` and in the `seeds` index.
  EXPECT_DOUBLE_EQ(doc.get("parameters")->get("seed")->as_number(), 1999.0);
  EXPECT_DOUBLE_EQ(doc.get("seeds")->get("seed")->as_number(), 1999.0);
  ASSERT_EQ(doc.get("fits")->items().size(), 1u);
  const json::value& fit = doc.get("fits")->items()[0];
  EXPECT_EQ(fit.get("label")->as_string(), "Fig2/k=4,D=5");
  EXPECT_DOUBLE_EQ(fit.get("values")->get("R2")->as_number(), 0.999);

  // Schema /2: the metrics section always carries every registered metric
  // (zeros included) so downstream tooling never key-checks.
  ASSERT_EQ(doc.get("metric_groups")->items().size(), 1u);
  EXPECT_EQ(doc.get("metric_groups")->items()[0].as_string(), "scheduler");
  const json::value* metrics = doc.get("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->get("counters")->members().size(), obs::counter_count);
  EXPECT_EQ(metrics->get("gauges")->members().size(), obs::gauge_count);
  EXPECT_EQ(metrics->get("histograms")->members().size(),
            obs::histogram_count);
  EXPECT_DOUBLE_EQ(metrics->get("counters")->get("sched.tasks")->as_number(),
                   6.0);
  EXPECT_NE(metrics->get("derived")->get("spt_cache_hit_rate"), nullptr);

  EXPECT_TRUE(validate_manifest(doc).empty());
}

TEST(lab_manifest, validate_catches_missing_and_ill_typed_fields) {
  const json::value good = json::parse(render_manifest(sample_record()));
  ASSERT_TRUE(validate_manifest(good).empty());

  // Not an object at all.
  EXPECT_FALSE(validate_manifest(json::value::array()).empty());

  // Wrong schema string.
  {
    json::value doc = good;
    doc.set("schema", json::value::string("something-else/9"));
    EXPECT_FALSE(validate_manifest(doc).empty());
  }
  // Empty experiment id.
  {
    json::value doc = good;
    doc.set("experiment", json::value::string(""));
    EXPECT_FALSE(validate_manifest(doc).empty());
  }
  // threads must be >= 1.
  {
    json::value doc = good;
    doc.set("threads", json::value::number(0));
    EXPECT_FALSE(validate_manifest(doc).empty());
  }
  // Each required key, when dropped, must produce a problem naming it.
  for (const char* key :
       {"schema", "experiment", "scale", "threads", "use_spt_cache",
        "parameters", "git_revision", "timestamp_utc", "wall_seconds",
        "cpu_seconds", "fits", "series", "metric_groups", "metrics"}) {
    json::value doc = json::value::object();
    for (const auto& [k, v] : good.members()) {
      if (k != key) doc.set(k, v);
    }
    const std::vector<std::string> problems = validate_manifest(doc);
    ASSERT_FALSE(problems.empty()) << key;
    bool named = false;
    for (const std::string& p : problems) {
      if (p.find(key) != std::string::npos) named = true;
    }
    EXPECT_TRUE(named) << key << ": " << problems.front();
  }
  // Ill-shaped fit entries are flagged too.
  {
    json::value doc = good;
    json::value fits = json::value::array();
    fits.push(json::value::number(3));
    doc.set("fits", fits);
    EXPECT_FALSE(validate_manifest(doc).empty());
  }
  // A metrics object missing its sub-objects is flagged.
  {
    json::value doc = good;
    doc.set("metrics", json::value::object());
    const std::vector<std::string> problems = validate_manifest(doc);
    EXPECT_FALSE(problems.empty());
  }
  // A malformed histogram summary is flagged.
  {
    json::value doc = good;
    json::value metrics = *good.get("metrics");
    json::value histograms = *metrics.get("histograms");
    histograms.set("sched.task_ns", json::value::number(1));
    metrics.set("histograms", histograms);
    doc.set("metrics", metrics);
    EXPECT_FALSE(validate_manifest(doc).empty());
  }
}

TEST(lab_manifest, git_revision_env_override) {
  ASSERT_EQ(setenv("MCAST_GIT_REVISION", "test-rev-123", 1), 0);
  EXPECT_EQ(current_git_revision(), "test-rev-123");
  ASSERT_EQ(unsetenv("MCAST_GIT_REVISION"), 0);
}

}  // namespace
}  // namespace mcast::lab
