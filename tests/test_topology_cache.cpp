// Topology-cache contracts: a cached build is byte-identical to a direct
// one (on and off the scaled path), LRU eviction respects the capacity
// bound and recency, concurrent misses on one key coalesce into a single
// build, and the stats counters add up. The 8-thread tests run under the
// tsan-obs CI job, so the locking here is exercised under TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/components.hpp"
#include "topo/cache.hpp"
#include "topo/catalog.hpp"

namespace mcast {
namespace {

graph direct_build(const std::string& name, std::uint64_t seed,
                   node_id budget) {
  network_entry entry = find_network(name);
  if (budget > 0) {
    entry = scaled_networks({entry}, budget)[0];
  }
  return largest_component(entry.build(seed));
}

void expect_same_graph(const graph& a, const graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(topology_cache, matches_direct_build_native) {
  topology_cache cache(4);
  const auto cached = cache.get("ARPA", 7);
  expect_same_graph(*cached, direct_build("ARPA", 7, 0));
}

TEST(topology_cache, matches_direct_build_scaled) {
  topology_cache cache(4);
  const auto cached = cache.get("ts1000", 7, 300);
  expect_same_graph(*cached, direct_build("ts1000", 7, 300));
}

TEST(topology_cache, distinct_keys_are_distinct_entries) {
  topology_cache cache(8);
  const auto a = cache.get("r100", 7, 80);
  const auto b = cache.get("r100", 8, 80);   // different seed
  const auto c = cache.get("r100", 7, 100);  // different budget
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(topology_cache, repeated_get_hits_and_shares_the_graph) {
  topology_cache cache(4);
  const auto first = cache.get("ARPA", 7);
  const auto second = cache.get("ARPA", 7);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(topology_cache, lru_evicts_least_recently_used) {
  topology_cache cache(2);
  const auto a = cache.get("r100", 1, 80);
  const auto b = cache.get("r100", 2, 80);
  (void)cache.get("r100", 1, 80);  // touch a: b is now least recent
  const auto c = cache.get("r100", 3, 80);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // a stayed (recently touched) -> hit; b was evicted -> rebuild.
  const std::uint64_t misses_before = cache.stats().misses;
  const auto a2 = cache.get("r100", 1, 80);
  EXPECT_EQ(a.get(), a2.get());
  EXPECT_EQ(cache.stats().misses, misses_before);
  (void)cache.get("r100", 2, 80);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  // The evicted graph is still alive through our shared_ptr.
  EXPECT_GT(b->node_count(), 0u);
}

TEST(topology_cache, evicted_graph_outlives_eviction) {
  topology_cache cache(1);
  const auto a = cache.get("r100", 1, 80);
  const graph* raw = a.get();
  (void)cache.get("r100", 2, 80);  // evicts a's entry
  EXPECT_EQ(cache.size(), 1u);
  expect_same_graph(*raw, direct_build("r100", 1, 80));
}

TEST(topology_cache, clear_empties_but_keeps_handed_out_graphs) {
  topology_cache cache(4);
  const auto a = cache.get("ARPA", 7);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GT(a->node_count(), 0u);
}

TEST(topology_cache, concurrent_same_key_builds_once) {
  topology_cache cache(4);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const graph>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&cache, &got, i] { got[i] = cache.get("ts1000", 7, 300); });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[0].get(), got[i].get()) << "thread " << i;
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(topology_cache, concurrent_mixed_keys_stay_consistent) {
  topology_cache cache(3);  // smaller than the working set: forces eviction
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, i] {
      for (int round = 0; round < 4; ++round) {
        const std::uint64_t seed = static_cast<std::uint64_t>((i + round) % 5);
        const auto g = cache.get("r100", seed, 80);
        ASSERT_GT(g->node_count(), 0u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 3u);
  const topology_cache::cache_stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads * 4));
}

TEST(topology_cache, unknown_name_throws_and_leaves_no_entry) {
  topology_cache cache(4);
  EXPECT_THROW((void)cache.get("no-such-network", 7), std::invalid_argument);
  EXPECT_EQ(cache.size(), 0u);
  // The failed build must not wedge the key for later callers.
  EXPECT_THROW((void)cache.get("no-such-network", 7), std::invalid_argument);
}

TEST(topology_cache, tiny_nonzero_budget_throws) {
  topology_cache cache(4);
  EXPECT_THROW((void)cache.get("ts1000", 7, 32), std::invalid_argument);
}

TEST(topology_cache, shared_instance_is_a_singleton) {
  EXPECT_EQ(&shared_topology_cache(), &shared_topology_cache());
}

// --- routing hash ------------------------------------------------------

TEST(topology_routing_hash, is_stable_and_key_sensitive) {
  topology_key key;
  key.name = "ARPA";
  key.seed = 7;
  const std::uint64_t h = topology_routing_hash(key);
  EXPECT_EQ(topology_routing_hash(key), h);  // pure function of the key

  topology_key other = key;
  other.seed = 8;
  EXPECT_NE(topology_routing_hash(other), h);
  other = key;
  other.name = "MBone";
  EXPECT_NE(topology_routing_hash(other), h);
  other = key;
  other.budget = 300;
  EXPECT_NE(topology_routing_hash(other), h);
}

// --- warm tier + tiered cache ------------------------------------------

TEST(warm_topology_tier, populate_then_find_matches_direct_build) {
  warm_topology_tier warm;
  topology_key arpa;
  arpa.name = "ARPA";
  arpa.seed = 7;
  topology_key scaled;
  scaled.name = "ts1000";
  scaled.seed = 7;
  scaled.budget = 300;
  warm.populate({arpa, scaled});
  EXPECT_EQ(warm.size(), 2u);

  const auto g = warm.find("ARPA", 7);
  ASSERT_NE(g, nullptr);
  expect_same_graph(*g, direct_build("ARPA", 7, 0));
  const auto s = warm.find("ts1000", 7, 300);
  ASSERT_NE(s, nullptr);
  expect_same_graph(*s, direct_build("ts1000", 7, 300));
  EXPECT_EQ(warm.find("ARPA", 8), nullptr);  // different seed: not warmed
  EXPECT_EQ(warm.hits(), 2u);
}

TEST(warm_topology_tier, populate_is_idempotent_and_readable_concurrently) {
  warm_topology_tier warm;
  topology_key arpa;
  arpa.name = "ARPA";
  arpa.seed = 7;
  warm.populate({arpa});
  const auto first = warm.find("ARPA", 7);
  warm.populate({arpa});  // re-populate must not duplicate or rebuild
  EXPECT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm.find("ARPA", 7).get(), first.get());

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&warm, &first] {
      for (int round = 0; round < 16; ++round) {
        const auto g = warm.find("ARPA", 7);
        ASSERT_EQ(g.get(), first.get());
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(tiered_topology_cache, warm_hit_bypasses_the_lru) {
  warm_topology_tier warm;
  topology_key arpa;
  arpa.name = "ARPA";
  arpa.seed = 7;
  warm.populate({arpa});

  tiered_topology_cache cache(&warm, 4);
  const auto warm_hit = cache.get("ARPA", 7);
  EXPECT_EQ(warm_hit.get(), warm.find("ARPA", 7).get());
  EXPECT_EQ(cache.lru().size(), 0u);  // never touched the shard LRU

  const auto cold = cache.get("r100", 3, 80);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cache.lru().size(), 1u);
  EXPECT_EQ(cache.get("r100", 3, 80).get(), cold.get());
}

TEST(tiered_topology_cache, works_without_a_warm_tier) {
  tiered_topology_cache cache(nullptr, 2);
  const auto g = cache.get("ARPA", 7);
  ASSERT_NE(g, nullptr);
  expect_same_graph(*g, direct_build("ARPA", 7, 0));
  EXPECT_EQ(cache.lru().size(), 1u);
}

}  // namespace
}  // namespace mcast
