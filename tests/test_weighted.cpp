// Weighted extension: edge_weights table, Dijkstra, weighted delivery
// trees. Unit weights must reduce exactly to the hop-count machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/dijkstra.hpp"
#include "graph/weights.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "multicast/weighted.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

TEST(edge_weights, defaults_and_set_get) {
  const graph g = make_ring(5);
  edge_weights w(g);
  EXPECT_DOUBLE_EQ(w.get(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.total(), 5.0);
  w.set(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(w.get(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(w.get(1, 0), 2.5) << "weights must be symmetric";
  EXPECT_DOUBLE_EQ(w.total(), 6.5);
}

TEST(edge_weights, slot_addressing_matches_adjacency) {
  const graph g = make_grid(3, 3);
  edge_weights w(g);
  w.set(4, 5, 7.0);
  const auto adj = g.neighbors(4);
  const std::size_t base = g.adjacency_base(4);
  for (std::size_t i = 0; i < adj.size(); ++i) {
    EXPECT_DOUBLE_EQ(w.at_slot(base + i), adj[i] == 5 ? 7.0 : 1.0);
  }
}

TEST(edge_weights, assign_from_function) {
  const graph g = make_path(4);
  edge_weights w(g);
  w.assign([](node_id a, node_id b) { return static_cast<double>(a + b); });
  EXPECT_DOUBLE_EQ(w.get(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.get(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(w.get(2, 3), 5.0);
}

TEST(edge_weights, validation) {
  const graph g = make_ring(4);
  EXPECT_THROW(edge_weights(g, 0.0), std::invalid_argument);
  edge_weights w(g);
  EXPECT_THROW(w.set(0, 2, 1.0), std::invalid_argument);  // no such link
  EXPECT_THROW(w.set(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(w.get(0, 9), std::out_of_range);
}

TEST(dijkstra, unit_weights_reduce_to_bfs) {
  waxman_params p;
  p.nodes = 80;
  const graph g = make_waxman(p, 4);
  const edge_weights w(g);
  const weighted_tree t = dijkstra_from(g, w, 0);
  const std::vector<hop_count> bfs = bfs_distances(g, 0);
  for (node_id v = 0; v < g.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(t.dist[v], static_cast<double>(bfs[v]));
  }
}

TEST(dijkstra, weighted_detour_wins) {
  // Triangle 0-1-2 plus a heavy direct edge: the 2-hop light path wins.
  graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const graph g = b.build();
  edge_weights w(g);
  w.set(0, 2, 10.0);
  const weighted_tree t = dijkstra_from(g, w, 0);
  EXPECT_DOUBLE_EQ(t.dist[2], 2.0);
  EXPECT_EQ(t.parent[2], 1u);
}

TEST(dijkstra, parents_form_valid_tree) {
  waxman_params p;
  p.nodes = 60;
  std::vector<point2d> pos;
  rng gen(9);
  const graph g = make_waxman(p, gen, &pos);
  edge_weights w(g);
  w.assign([&pos](node_id a, node_id b) {
    return std::hypot(pos[a].x - pos[b].x, pos[a].y - pos[b].y) + 1e-9;
  });
  const weighted_tree t = dijkstra_from(g, w, 7);
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (v == 7 || !t.reached(v)) continue;
    ASSERT_NE(t.parent[v], invalid_node);
    EXPECT_TRUE(g.has_edge(v, t.parent[v]));
    EXPECT_NEAR(t.dist[v], t.dist[t.parent[v]] + w.get(v, t.parent[v]), 1e-9);
  }
}

TEST(dijkstra, unreachable_nodes) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph g = b.build();
  const edge_weights w(g);
  const weighted_tree t = dijkstra_from(g, w, 0);
  EXPECT_TRUE(t.reached(1));
  EXPECT_FALSE(t.reached(2));
  EXPECT_EQ(t.parent[2], invalid_node);
}

TEST(dijkstra, rejects_foreign_weights) {
  const graph g1 = make_ring(4);
  const graph g2 = make_ring(4);
  const edge_weights w(g2);
  EXPECT_THROW(dijkstra_from(g1, w, 0), std::invalid_argument);
  EXPECT_THROW(dijkstra_from(g2, w, 9), std::out_of_range);
}

TEST(weighted_multicast, unit_weights_match_hop_machinery) {
  waxman_params p;
  p.nodes = 90;
  const graph g = make_waxman(p, 6);
  const edge_weights w(g);
  const weighted_tree wt = dijkstra_from(g, w, 0);
  const source_tree st(g, 0);
  rng gen(3);
  const auto receivers = sample_distinct(all_sites_except(g, 0), 20, gen);

  // With unit weights, weighted cost == link count; both unions are
  // shortest-path unions, so sizes agree even if tie-breaks differ...
  // link-count equality is NOT guaranteed for different SPTs, but cost of
  // the weighted union must equal its own link count:
  const double cost = weighted_delivery_tree_cost(g, w, wt, receivers);
  const std::size_t links = weighted_delivery_tree_links(g, wt, receivers);
  EXPECT_DOUBLE_EQ(cost, static_cast<double>(links));
  // And both unions should be close in size (same distance field).
  const std::size_t hop_links = delivery_tree_size(st, receivers);
  EXPECT_NEAR(static_cast<double>(links), static_cast<double>(hop_links),
              0.15 * static_cast<double>(hop_links));
}

TEST(weighted_multicast, cost_bounded_by_unicast_total) {
  waxman_params p;
  p.nodes = 70;
  std::vector<point2d> pos;
  rng topo_gen(8);
  const graph g = make_waxman(p, topo_gen, &pos);
  edge_weights w(g);
  w.assign([&pos](node_id a, node_id b) {
    return std::hypot(pos[a].x - pos[b].x, pos[a].y - pos[b].y) + 0.1;
  });
  const weighted_tree t = dijkstra_from(g, w, 3);
  rng gen(4);
  const auto receivers = sample_distinct(all_sites_except(g, 3), 15, gen);
  const double tree_cost = weighted_delivery_tree_cost(g, w, t, receivers);
  const double unicast = weighted_unicast_total(t, receivers);
  EXPECT_LE(tree_cost, unicast + 1e-9);
  double max_dist = 0.0;
  for (node_id v : receivers) max_dist = std::max(max_dist, t.dist[v]);
  EXPECT_GE(tree_cost, max_dist - 1e-9);
}

TEST(weighted_multicast, repeats_ignored_and_errors) {
  const graph g = make_path(5);
  const edge_weights w(g);
  const weighted_tree t = dijkstra_from(g, w, 0);
  const node_id once[] = {4};
  const node_id twice[] = {4, 4};
  EXPECT_DOUBLE_EQ(weighted_delivery_tree_cost(g, w, t, once),
                   weighted_delivery_tree_cost(g, w, t, twice));
  EXPECT_DOUBLE_EQ(weighted_unicast_total(t, twice), 8.0);

  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph g2 = b.build();
  const edge_weights w2(g2);
  const weighted_tree t2 = dijkstra_from(g2, w2, 0);
  const node_id bad[] = {2};
  EXPECT_THROW(weighted_delivery_tree_cost(g2, w2, t2, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcast
