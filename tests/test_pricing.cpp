// Pricing helpers built on the scaling law.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/pricing.hpp"

namespace mcast {
namespace {

pricing_policy canonical_policy() {
  pricing_policy p;
  p.unit_price_per_link = 2.0;
  p.mean_unicast_path = 10.0;
  p.law = scaling_law(1.0, 0.8);
  return p;
}

TEST(pricing, multicast_price_formula) {
  const pricing_policy p = canonical_policy();
  EXPECT_NEAR(multicast_price(p, 100.0),
              2.0 * 10.0 * std::pow(100.0, 0.8), 1e-9);
}

TEST(pricing, unicast_price_linear) {
  const pricing_policy p = canonical_policy();
  EXPECT_DOUBLE_EQ(unicast_price(p, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(unicast_price(p, 50.0), 1000.0);
}

TEST(pricing, group_of_one_costs_the_same_either_way) {
  // A = 1 means a single receiver pays exactly the unicast price.
  const pricing_policy p = canonical_policy();
  EXPECT_NEAR(multicast_price(p, 1.0), unicast_price(p, 1.0), 1e-9);
  EXPECT_NEAR(multicast_savings_fraction(p, 1.0), 0.0, 1e-12);
}

TEST(pricing, savings_grow_with_group_size) {
  const pricing_policy p = canonical_policy();
  EXPECT_LT(multicast_savings_fraction(p, 10.0),
            multicast_savings_fraction(p, 1000.0));
  // δ = m^{-0.2}: at m=1000, savings = 1 - 1000^{-0.2} ≈ 0.749.
  EXPECT_NEAR(multicast_savings_fraction(p, 1000.0),
              1.0 - std::pow(1000.0, -0.2), 1e-9);
}

TEST(pricing, per_receiver_price_decreasing) {
  const pricing_policy p = canonical_policy();
  EXPECT_GT(multicast_price_per_receiver(p, 10.0),
            multicast_price_per_receiver(p, 100.0));
}

TEST(pricing, group_size_for_savings_inverse) {
  const pricing_policy p = canonical_policy();
  const double m = group_size_for_savings(p, 0.5);
  EXPECT_NEAR(multicast_savings_fraction(p, m), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(group_size_for_savings(p, 0.0), 1.0);
}

TEST(pricing, flat_rate_capacity_inverse) {
  const pricing_policy p = canonical_policy();
  const double flat = 500.0;
  const double m = flat_rate_capacity(p, flat);
  EXPECT_NEAR(multicast_price(p, m), flat, 1e-6);
}

TEST(pricing, validation) {
  pricing_policy p = canonical_policy();
  p.unit_price_per_link = 0.0;
  EXPECT_THROW(multicast_price(p, 10.0), std::invalid_argument);
  p = canonical_policy();
  p.mean_unicast_path = -1.0;
  EXPECT_THROW(unicast_price(p, 10.0), std::invalid_argument);
  p = canonical_policy();
  EXPECT_THROW(unicast_price(p, 0.0), std::invalid_argument);
  EXPECT_THROW(group_size_for_savings(p, 1.0), std::invalid_argument);
  EXPECT_THROW(flat_rate_capacity(p, 0.0), std::invalid_argument);
  p.law = scaling_law(1.0, 1.1);
  EXPECT_THROW(group_size_for_savings(p, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
