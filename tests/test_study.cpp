// run_scaling_study: end-to-end orchestration over a scaled-down suite.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/study.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

study_config quick_config() {
  study_config c;
  c.monte_carlo.receiver_sets = 10;
  c.monte_carlo.sources = 6;
  c.monte_carlo.seed = 3;
  c.grid_points = 10;
  return c;
}

std::vector<network_entry> tiny_suite() {
  return {
      {"wax", network_kind::generated,
       [](std::uint64_t seed) {
         waxman_params p;
         p.nodes = 120;
         p.alpha = 0.3;
         graph g = make_waxman(p, seed);
         g.set_name("wax");
         return g;
       }},
      {"grid", network_kind::generated,
       [](std::uint64_t) { return make_grid(10, 12); }},
  };
}

TEST(study, produces_one_result_per_network) {
  const study_result r = run_scaling_study(tiny_suite(), quick_config());
  ASSERT_EQ(r.networks.size(), 2u);
  EXPECT_EQ(r.networks[0].name, "wax");
  EXPECT_EQ(r.networks[1].name, "grid");
  EXPECT_EQ(r.networks[0].nodes, 120u);
  EXPECT_EQ(r.networks[1].nodes, 120u);
  for (const auto& n : r.networks) {
    EXPECT_GE(n.measurement.size(), 8u);
    EXPECT_GT(n.links, 0u);
  }
}

TEST(study, fitted_exponents_in_sane_band) {
  const study_result r = run_scaling_study(tiny_suite(), quick_config());
  for (const auto& n : r.networks) {
    EXPECT_GT(n.law.exponent(), 0.3) << n.name;
    EXPECT_LT(n.law.exponent(), 1.0) << n.name;
  }
  EXPECT_GT(r.mean_exponent(), 0.3);
  EXPECT_LT(r.mean_exponent(), 1.0);
}

TEST(study, deterministic) {
  const study_result a = run_scaling_study(tiny_suite(), quick_config());
  const study_result b = run_scaling_study(tiny_suite(), quick_config());
  ASSERT_EQ(a.networks.size(), b.networks.size());
  for (std::size_t i = 0; i < a.networks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.networks[i].law.exponent(), b.networks[i].law.exponent());
  }
}

TEST(study, handles_disconnected_entry_via_giant_component) {
  std::vector<network_entry> suite = {
      {"frag", network_kind::generated, [](std::uint64_t seed) {
         waxman_params p;
         p.nodes = 150;
         p.alpha = 0.06;
         p.beta = 0.4;  // dense enough for a large giant component
         p.ensure_connected = false;  // but still fragmenting
         return make_waxman(p, seed);
       }}};
  const study_result r = run_scaling_study(suite, quick_config());
  ASSERT_EQ(r.networks.size(), 1u);
  EXPECT_LT(r.networks[0].nodes, 150u) << "should have dropped to giant component";
  EXPECT_GT(r.networks[0].nodes, 10u);
}

TEST(study, empty_result_mean_exponent) {
  EXPECT_DOUBLE_EQ(study_result{}.mean_exponent(), 0.0);
}

TEST(study, validation) {
  study_config c = quick_config();
  c.grid_points = 1;
  EXPECT_THROW(run_scaling_study(tiny_suite(), c), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
