// Exit-code audit for the mcast_lab CLI, against the real binary: every
// error path must return non-zero AND say why on stderr; the happy paths
// stay 0. The scripts and CI jobs that chain `mcast_lab run && mcast_lab
// validate` depend on these codes. MCAST_LAB_BIN comes from CMake.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proc_util.hpp"

namespace mcast::lab {
namespace {

using testproc::run;
using testproc::run_result;

void expect_failure(const std::vector<std::string>& argv, int expected_code) {
  const run_result r = run(MCAST_LAB_BIN, argv);
  std::string joined;
  for (const std::string& a : argv) joined += a + " ";
  EXPECT_EQ(r.exit_code, expected_code) << "argv: " << joined
                                        << "\nstderr: " << r.err;
  EXPECT_FALSE(r.err.empty())
      << "error exits must explain themselves on stderr; argv: " << joined;
}

TEST(cli_exit_codes, no_arguments_is_an_error) {
  const run_result r = run(MCAST_LAB_BIN, {});
  EXPECT_EQ(r.exit_code, 1);
  // Usage goes to stdout for no-args (it doubles as the help text).
  EXPECT_FALSE(r.out.empty());
}

TEST(cli_exit_codes, help_is_success) {
  EXPECT_EQ(run(MCAST_LAB_BIN, {"--help"}).exit_code, 0);
  EXPECT_EQ(run(MCAST_LAB_BIN, {"help"}).exit_code, 0);
}

TEST(cli_exit_codes, unknown_command) {
  expect_failure({"frobnicate"}, 1);
}

TEST(cli_exit_codes, run_unknown_experiment) {
  expect_failure({"run", "no_such_experiment"}, 1);
}

TEST(cli_exit_codes, run_without_ids) {
  expect_failure({"run"}, 1);
}

TEST(cli_exit_codes, run_bad_param_syntax) {
  expect_failure({"run", "fig1", "--param", "no-equals-sign"}, 1);
}

TEST(cli_exit_codes, run_bad_scale) {
  expect_failure({"run", "fig1", "--scale", "banana"}, 1);
}

TEST(cli_exit_codes, run_unknown_option) {
  expect_failure({"run", "fig1", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, run_unwritable_manifest_dir_fails_fast) {
  // /dev/null is a file, so nothing can be created beneath it. This must
  // fail before any experiment runs (hence the short test timeout).
  expect_failure({"run", "fig1", "--manifest-dir", "/dev/null/x"}, 1);
}

TEST(cli_exit_codes, run_unwritable_out_dir_fails_fast) {
  expect_failure({"run", "fig1", "--out-dir", "/dev/null/x"}, 1);
}

TEST(cli_exit_codes, describe_unknown_experiment) {
  expect_failure({"describe", "no_such_experiment"}, 1);
}

TEST(cli_exit_codes, describe_without_id) {
  expect_failure({"describe"}, 1);
}

TEST(cli_exit_codes, list_unknown_flag) {
  expect_failure({"list", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, validate_missing_directory) {
  expect_failure({"validate", "/no/such/directory"}, 2);
}

TEST(cli_exit_codes, validate_empty_directory) {
  char tmpl[] = "/tmp/mcast_validate_emptyXXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  expect_failure({"validate", tmpl}, 2);
  ::rmdir(tmpl);
}

TEST(cli_exit_codes, validate_without_directory) {
  expect_failure({"validate"}, 1);
}

TEST(cli_exit_codes, serve_bad_flags) {
  expect_failure({"serve", "--port=notaport"}, 1);
  expect_failure({"serve", "--port=99999"}, 1);
  expect_failure({"serve", "--threads=0"}, 1);
  expect_failure({"serve", "--queue=0"}, 1);
  expect_failure({"serve", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, query_bad_flags) {
  expect_failure({"query"}, 1);                       // --port required
  expect_failure({"query", "--port=0"}, 1);
  expect_failure({"query", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, query_connection_refused) {
  // Port 1 on loopback is essentially never listening in CI; a failed
  // connect must be exit 1 with an explanation, not a hang or a crash.
  expect_failure({"query", "--port=1", "{\"op\":\"healthz\"}"}, 1);
}

TEST(cli_exit_codes, list_succeeds) {
  const run_result r = run(MCAST_LAB_BIN, {"list"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("fig1"), std::string::npos);
}

}  // namespace
}  // namespace mcast::lab
