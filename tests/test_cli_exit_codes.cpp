// Exit-code audit for the mcast_lab CLI, against the real binary: every
// error path must return non-zero AND say why on stderr; the happy paths
// stay 0. The scripts and CI jobs that chain `mcast_lab run && mcast_lab
// validate` depend on these codes. MCAST_LAB_BIN comes from CMake.
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "proc_util.hpp"

namespace mcast::lab {
namespace {

using testproc::finish;
using testproc::read_until;
using testproc::run;
using testproc::run_result;
using testproc::spawn;
using testproc::spawned;

void expect_failure(const std::vector<std::string>& argv, int expected_code) {
  const run_result r = run(MCAST_LAB_BIN, argv);
  std::string joined;
  for (const std::string& a : argv) joined += a + " ";
  EXPECT_EQ(r.exit_code, expected_code) << "argv: " << joined
                                        << "\nstderr: " << r.err;
  EXPECT_FALSE(r.err.empty())
      << "error exits must explain themselves on stderr; argv: " << joined;
}

TEST(cli_exit_codes, no_arguments_is_an_error) {
  const run_result r = run(MCAST_LAB_BIN, {});
  EXPECT_EQ(r.exit_code, 1);
  // Usage goes to stdout for no-args (it doubles as the help text).
  EXPECT_FALSE(r.out.empty());
}

TEST(cli_exit_codes, help_is_success) {
  EXPECT_EQ(run(MCAST_LAB_BIN, {"--help"}).exit_code, 0);
  EXPECT_EQ(run(MCAST_LAB_BIN, {"help"}).exit_code, 0);
}

TEST(cli_exit_codes, unknown_command) {
  expect_failure({"frobnicate"}, 1);
}

TEST(cli_exit_codes, run_unknown_experiment) {
  expect_failure({"run", "no_such_experiment"}, 1);
}

TEST(cli_exit_codes, run_without_ids) {
  expect_failure({"run"}, 1);
}

TEST(cli_exit_codes, run_bad_param_syntax) {
  expect_failure({"run", "fig1", "--param", "no-equals-sign"}, 1);
}

TEST(cli_exit_codes, run_bad_scale) {
  expect_failure({"run", "fig1", "--scale", "banana"}, 1);
}

TEST(cli_exit_codes, run_unknown_option) {
  expect_failure({"run", "fig1", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, run_unwritable_manifest_dir_fails_fast) {
  // /dev/null is a file, so nothing can be created beneath it. This must
  // fail before any experiment runs (hence the short test timeout).
  expect_failure({"run", "fig1", "--manifest-dir", "/dev/null/x"}, 1);
}

TEST(cli_exit_codes, run_unwritable_out_dir_fails_fast) {
  expect_failure({"run", "fig1", "--out-dir", "/dev/null/x"}, 1);
}

TEST(cli_exit_codes, describe_unknown_experiment) {
  expect_failure({"describe", "no_such_experiment"}, 1);
}

TEST(cli_exit_codes, describe_without_id) {
  expect_failure({"describe"}, 1);
}

TEST(cli_exit_codes, list_unknown_flag) {
  expect_failure({"list", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, validate_missing_directory) {
  expect_failure({"validate", "/no/such/directory"}, 2);
}

TEST(cli_exit_codes, validate_empty_directory) {
  char tmpl[] = "/tmp/mcast_validate_emptyXXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  expect_failure({"validate", tmpl}, 2);
  ::rmdir(tmpl);
}

TEST(cli_exit_codes, validate_without_directory) {
  expect_failure({"validate"}, 1);
}

TEST(cli_exit_codes, serve_bad_flags) {
  expect_failure({"serve", "--port=notaport"}, 1);
  expect_failure({"serve", "--port=99999"}, 1);
  expect_failure({"serve", "--threads=0"}, 1);
  expect_failure({"serve", "--queue=0"}, 1);
  expect_failure({"serve", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, query_bad_flags) {
  expect_failure({"query"}, 1);                       // --port required
  expect_failure({"query", "--port=0"}, 1);
  expect_failure({"query", "--frobnicate"}, 1);
}

TEST(cli_exit_codes, query_connection_refused_is_3) {
  // Port 1 on loopback is essentially never listening in CI; a refused
  // connect after retries is its own exit code (docs/resilience.md) so
  // scripts can tell "daemon not up" from "daemon said no".
  expect_failure({"query", "--port=1", "--retries=2", "--backoff-ms=0",
                  "{\"op\":\"healthz\"}"},
                 3);
}

TEST(cli_exit_codes, query_timeout_is_4) {
  // A listener that accepts (from the kernel backlog) but never answers:
  // the query must give up at --timeout-ms per attempt and exit 4.
  const net::listen_socket mute = net::listen_loopback(0);
  expect_failure({"query", "--port=" + std::to_string(mute.port),
                  "--timeout-ms=200", "--retries=1", "--backoff-ms=0",
                  "{\"op\":\"healthz\"}"},
                 4);
}

TEST(cli_exit_codes, query_typed_server_error_is_2) {
  // A real server answering a typed error line: the response is printed
  // (stdout is still useful) but the exit code says a request failed.
  const spawned server =
      spawn(MCAST_LAB_BIN, {"serve", "--port=0", "--threads=1", "--queue=4"});
  ASSERT_GT(server.pid, 0);
  const std::string banner = read_until(server.stderr_fd, "listening on",
                                        std::chrono::milliseconds(15000));
  const std::string key = "listening on 127.0.0.1:";
  const std::size_t at = banner.find(key);
  ASSERT_NE(at, std::string::npos) << banner;
  const std::string port = std::to_string(
      std::strtoul(banner.c_str() + at + key.size(), nullptr, 10));

  const run_result bad = run(
      MCAST_LAB_BIN, {"query", "--port=" + port, "{\"op\":\"frobnicate\"}"});
  EXPECT_EQ(bad.exit_code, 2) << bad.err;
  EXPECT_NE(bad.out.find("\"ok\":false"), std::string::npos) << bad.out;
  EXPECT_FALSE(bad.err.empty());

  // Sanity: the same server answers a good request with exit 0.
  const run_result good =
      run(MCAST_LAB_BIN, {"query", "--port=" + port, "{\"op\":\"healthz\"}"});
  EXPECT_EQ(good.exit_code, 0) << good.err;

  ASSERT_EQ(::kill(server.pid, SIGTERM), 0);
  const run_result r = finish(server);
  EXPECT_EQ(r.exit_code, 0) << r.err;
}

TEST(cli_exit_codes, list_succeeds) {
  const run_result r = run(MCAST_LAB_BIN, {"list"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("fig1"), std::string::npos);
}

}  // namespace
}  // namespace mcast::lab
