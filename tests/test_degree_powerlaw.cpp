// Degree CCDF and power-law tail fitting (the Faloutsos^3 diagnostic).
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/degree_powerlaw.hpp"
#include "topo/power_law.hpp"
#include "topo/random.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(degree_ccdf, exact_on_star) {
  // Star of 6: degrees {5, 1, 1, 1, 1, 1}.
  const auto ccdf = degree_ccdf(make_star(6));
  ASSERT_EQ(ccdf.size(), 2u);
  EXPECT_EQ(ccdf[0].degree, 1u);
  EXPECT_DOUBLE_EQ(ccdf[0].fraction, 1.0);
  EXPECT_EQ(ccdf[1].degree, 5u);
  EXPECT_NEAR(ccdf[1].fraction, 1.0 / 6.0, 1e-12);
}

TEST(degree_ccdf, monotone_nonincreasing) {
  barabasi_albert_params p;
  p.nodes = 2000;
  const auto ccdf = degree_ccdf(make_barabasi_albert(p, 3));
  ASSERT_GT(ccdf.size(), 5u);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LT(ccdf[i - 1].degree, ccdf[i].degree);
    EXPECT_GE(ccdf[i - 1].fraction, ccdf[i].fraction);
  }
  EXPECT_DOUBLE_EQ(ccdf.front().fraction, 1.0);
}

TEST(degree_ccdf, empty_graph) {
  EXPECT_TRUE(degree_ccdf(graph{}).empty());
}

TEST(degree_powerlaw, barabasi_albert_exponent_near_three) {
  // BA's theoretical pdf exponent is 3.
  barabasi_albert_params p;
  p.nodes = 20000;
  p.edges_per_node = 2;
  const auto fit = fit_degree_powerlaw(make_barabasi_albert(p, 7), 2);
  EXPECT_GT(fit.exponent, 2.2);
  EXPECT_LT(fit.exponent, 3.8);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(degree_powerlaw, heavy_tail_beats_poisson_tail) {
  // ER degrees are Poisson — the log-log CCDF bends hard; BA's stays
  // straight. Compare tail linearity.
  barabasi_albert_params bp;
  bp.nodes = 5000;
  const auto ba = fit_degree_powerlaw(make_barabasi_albert(bp, 3), 2);

  erdos_renyi_params ep;
  ep.nodes = 5000;
  ep.edge_prob = 8.0 / 5000.0;
  ep.keep_largest_component = false;
  const auto er = fit_degree_powerlaw(make_erdos_renyi(ep, 3), 2);
  EXPECT_GT(ba.r_squared, er.r_squared);
}

TEST(degree_powerlaw, validation) {
  // A 3-regular graph has a single distinct degree: no tail to fit.
  random_regular_params p;
  p.nodes = 50;
  p.degree = 3;
  EXPECT_THROW(fit_degree_powerlaw(make_random_regular(p, 1)), std::invalid_argument);
  EXPECT_THROW(fit_degree_powerlaw(graph{}), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
