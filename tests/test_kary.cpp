// kary_shape: index arithmetic (levels, parents, LCA, distance) against the
// materialized graph as ground truth.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "topo/kary.hpp"

namespace mcast {
namespace {

TEST(kary, node_and_leaf_counts) {
  const kary_shape s(2, 3);
  EXPECT_EQ(s.node_count(), 15u);
  EXPECT_EQ(s.leaf_count(), 8u);
  const kary_shape t(3, 2);
  EXPECT_EQ(t.node_count(), 13u);
  EXPECT_EQ(t.leaf_count(), 9u);
}

TEST(kary, depth_zero_tree_is_single_node) {
  const kary_shape s(4, 0);
  EXPECT_EQ(s.node_count(), 1u);
  EXPECT_EQ(s.leaf_count(), 1u);
  EXPECT_EQ(s.first_leaf(), 0u);
  EXPECT_EQ(s.level_of(0), 0u);
}

TEST(kary, level_geometry) {
  const kary_shape s(2, 3);
  EXPECT_EQ(s.level_begin(0), 0u);
  EXPECT_EQ(s.level_begin(1), 1u);
  EXPECT_EQ(s.level_begin(2), 3u);
  EXPECT_EQ(s.level_begin(3), 7u);
  EXPECT_EQ(s.first_leaf(), 7u);
  EXPECT_EQ(s.level_size(0), 1u);
  EXPECT_EQ(s.level_size(2), 4u);
  EXPECT_EQ(s.level_size(3), 8u);
  EXPECT_THROW(s.level_begin(4), std::out_of_range);
}

TEST(kary, level_of_and_parent) {
  const kary_shape s(3, 3);
  EXPECT_EQ(s.level_of(0), 0u);
  EXPECT_EQ(s.level_of(1), 1u);
  EXPECT_EQ(s.level_of(3), 1u);
  EXPECT_EQ(s.level_of(4), 2u);
  EXPECT_EQ(s.parent(0), invalid_node);
  for (node_id v = 1; v < s.node_count(); ++v) {
    const node_id p = s.parent(v);
    EXPECT_EQ(s.level_of(p) + 1, s.level_of(v));
    // v must be among p's children k*p+1..k*p+k.
    EXPECT_GE(v, 3 * p + 1);
    EXPECT_LE(v, 3 * p + 3);
  }
}

TEST(kary, requires_k_at_least_two) {
  EXPECT_THROW(kary_shape(1, 3), std::invalid_argument);
  EXPECT_THROW(kary_shape(0, 3), std::invalid_argument);
}

TEST(kary, lca_basics) {
  const kary_shape s(2, 3);
  EXPECT_EQ(s.lca(7, 8), 3u);   // sibling leaves
  EXPECT_EQ(s.lca(7, 9), 1u);   // cousins
  EXPECT_EQ(s.lca(7, 14), 0u);  // opposite subtrees
  EXPECT_EQ(s.lca(3, 7), 3u);   // ancestor relation
  EXPECT_EQ(s.lca(5, 5), 5u);   // self
  EXPECT_EQ(s.lca(0, 11), 0u);  // root with anything
}

TEST(kary, distance_matches_bfs_on_graph) {
  for (unsigned k : {2u, 3u, 4u}) {
    const kary_shape s(k, 4);
    const graph g = s.to_graph();
    // Compare arithmetic distance with BFS distance from several anchors.
    for (node_id anchor : {node_id{0}, node_id{1}, s.first_leaf(),
                           static_cast<node_id>(s.node_count() - 1)}) {
      const std::vector<hop_count> d = bfs_distances(g, anchor);
      for (node_id v = 0; v < s.node_count(); ++v) {
        EXPECT_EQ(s.distance(anchor, v), d[v])
            << "k=" << k << " anchor=" << anchor << " v=" << v;
      }
    }
  }
}

TEST(kary, distance_symmetry_and_identity) {
  const kary_shape s(3, 4);
  EXPECT_EQ(s.distance(17, 17), 0u);
  EXPECT_EQ(s.distance(5, 29), s.distance(29, 5));
}

TEST(kary, graph_shape) {
  const graph g = make_kary_tree(2, 3);
  EXPECT_EQ(g.node_count(), 15u);
  EXPECT_EQ(g.edge_count(), 14u);  // a tree
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);      // root has k children
  EXPECT_EQ(g.degree(7), 1u);      // leaves have degree 1
  EXPECT_EQ(g.degree(1), 3u);      // internal: parent + k children
  EXPECT_EQ(g.name(), "kary2x3");
}

TEST(kary, out_of_range_throws) {
  const kary_shape s(2, 2);
  EXPECT_THROW(s.level_of(7), std::out_of_range);
  EXPECT_THROW(s.parent(7), std::out_of_range);
  EXPECT_THROW(s.lca(0, 7), std::out_of_range);
  EXPECT_THROW(s.distance(7, 0), std::out_of_range);
}

TEST(kary, large_depth_binary_tree_counts) {
  const kary_shape s(2, 17);
  EXPECT_EQ(s.leaf_count(), 131072u);
  EXPECT_EQ(s.node_count(), 262143u);
  EXPECT_EQ(s.level_of(static_cast<node_id>(s.node_count() - 1)), 17u);
}

}  // namespace
}  // namespace mcast
