// Dynamic delivery tree: join/leave reference counting must always agree
// with a from-scratch rebuild, including under heavy random churn.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/weights.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/dynamic_tree.hpp"
#include "multicast/receivers.hpp"
#include "sim/rng.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

// From-scratch weighted reference: walk every member's path to the source
// and sum each tree link's weight once — the ground truth the incremental
// accounting must track.
double rebuild_weighted_cost(const source_tree& t, const edge_weights& w,
                             const std::vector<node_id>& members) {
  std::vector<char> on(t.node_count(), 0);
  double cost = 0.0;
  for (node_id m : members) {
    for (node_id v = m; v != t.source(); v = t.parent(v)) {
      if (on[v]) break;
      on[v] = 1;
      cost += w.get(v, t.parent(v));
    }
  }
  return cost;
}

TEST(dynamic_tree, starts_empty) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  EXPECT_EQ(d.link_count(), 0u);
  EXPECT_EQ(d.receiver_count(), 0u);
  EXPECT_EQ(d.distinct_receiver_sites(), 0u);
}

TEST(dynamic_tree, join_grows_leave_prunes_exactly) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  EXPECT_EQ(d.join(7), 3u);   // full path
  EXPECT_EQ(d.join(8), 1u);   // sibling shares 2 links
  EXPECT_EQ(d.link_count(), 4u);
  EXPECT_EQ(d.leave(7), 1u);  // only the 3-7 leaf link is exclusive
  EXPECT_EQ(d.link_count(), 3u);
  EXPECT_EQ(d.leave(8), 3u);  // rest of the tree collapses
  EXPECT_EQ(d.link_count(), 0u);
}

TEST(dynamic_tree, multiple_receivers_per_site) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  EXPECT_EQ(d.join(9), 3u);
  EXPECT_EQ(d.join(9), 0u);  // second instance at the same site: no links
  EXPECT_EQ(d.receivers_at(9), 2u);
  EXPECT_EQ(d.distinct_receiver_sites(), 1u);
  EXPECT_EQ(d.leave(9), 0u);  // one instance remains -> nothing pruned
  EXPECT_EQ(d.link_count(), 3u);
  EXPECT_EQ(d.leave(9), 3u);
  EXPECT_EQ(d.link_count(), 0u);
  EXPECT_EQ(d.distinct_receiver_sites(), 0u);
}

TEST(dynamic_tree, source_join_is_free) {
  const graph g = make_ring(8);
  const source_tree t(g, 2);
  dynamic_delivery_tree d(t);
  EXPECT_EQ(d.join(2), 0u);
  EXPECT_EQ(d.link_count(), 0u);
  EXPECT_EQ(d.receiver_count(), 1u);
  EXPECT_EQ(d.leave(2), 0u);
}

TEST(dynamic_tree, on_tree_tracks_membership) {
  const graph g = make_kary_tree(2, 4);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  d.join(19);
  EXPECT_TRUE(d.on_tree(19));
  EXPECT_TRUE(d.on_tree(9));  // ancestor
  EXPECT_TRUE(d.on_tree(0));
  EXPECT_FALSE(d.on_tree(20));
  d.leave(19);
  EXPECT_FALSE(d.on_tree(19));
}

TEST(dynamic_tree, leave_without_join_throws) {
  const graph g = make_ring(6);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  EXPECT_THROW(d.leave(3), std::invalid_argument);
  d.join(3);
  d.leave(3);
  EXPECT_THROW(d.leave(3), std::invalid_argument);
  EXPECT_THROW(d.join(99), std::out_of_range);
}

TEST(dynamic_tree, random_churn_matches_rebuild) {
  waxman_params p;
  p.nodes = 120;
  const graph g = make_waxman(p, 7);
  const source_tree t(g, 5);
  dynamic_delivery_tree d(t);
  rng gen(42);
  std::vector<node_id> members;  // multiset of joined instances

  for (int step = 0; step < 2000; ++step) {
    const bool can_leave = !members.empty();
    const bool do_leave = can_leave && gen.chance(0.45);
    if (do_leave) {
      const std::size_t i = gen.below(members.size());
      d.leave(members[i]);
      members[i] = members.back();
      members.pop_back();
    } else {
      node_id v = static_cast<node_id>(gen.below(g.node_count()));
      if (v == t.source()) v = (v + 1) % g.node_count();
      d.join(v);
      members.push_back(v);
    }
    if (step % 100 == 0) {
      EXPECT_EQ(d.link_count(), delivery_tree_size(t, members))
          << "diverged at step " << step;
      EXPECT_EQ(d.receiver_count(), members.size());
    }
  }
  // Drain completely.
  while (!members.empty()) {
    d.leave(members.back());
    members.pop_back();
  }
  EXPECT_EQ(d.link_count(), 0u);
  EXPECT_EQ(d.receiver_count(), 0u);
  EXPECT_EQ(d.distinct_receiver_sites(), 0u);
}

TEST(dynamic_tree, unweighted_cost_equals_link_count) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  dynamic_delivery_tree d(t);
  EXPECT_EQ(d.weights(), nullptr);
  d.join(7);
  d.join(8);
  EXPECT_DOUBLE_EQ(d.link_cost(), static_cast<double>(d.link_count()));
}

TEST(dynamic_tree, weighted_ctor_rejects_mismatched_topology) {
  const graph g = make_kary_tree(2, 3);
  const graph other = make_ring(6);
  const source_tree t(g, 0);
  const edge_weights w(other);
  EXPECT_THROW(dynamic_delivery_tree(t, w), std::invalid_argument);
}

TEST(dynamic_tree, weighted_cost_tracks_join_and_leave) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  edge_weights w(g);
  w.assign([](node_id a, node_id b) {
    return 1.0 + 0.125 * static_cast<double>(a + b);
  });
  dynamic_delivery_tree d(t, w);
  EXPECT_EQ(d.weights(), &w);
  d.join(7);  // path 0-1-3-7
  EXPECT_DOUBLE_EQ(d.link_cost(),
                   w.get(0, 1) + w.get(1, 3) + w.get(3, 7));
  d.join(8);  // adds only 3-8
  EXPECT_DOUBLE_EQ(
      d.link_cost(),
      w.get(0, 1) + w.get(1, 3) + w.get(3, 7) + w.get(3, 8));
  d.leave(7);
  EXPECT_DOUBLE_EQ(d.link_cost(), w.get(0, 1) + w.get(1, 3) + w.get(3, 8));
  d.leave(8);
  EXPECT_EQ(d.link_cost(), 0.0);  // drained trees pin to exactly zero
}

TEST(dynamic_tree, weighted_random_churn_matches_rebuild) {
  waxman_params p;
  p.nodes = 120;
  const graph g = make_waxman(p, 7);
  const source_tree t(g, 5);
  edge_weights w(g);
  rng wgen(13);
  w.assign([&wgen](node_id, node_id) { return 0.5 + wgen.uniform(); });
  dynamic_delivery_tree d(t, w);
  rng gen(42);
  std::vector<node_id> members;

  for (int step = 0; step < 2000; ++step) {
    const bool do_leave = !members.empty() && gen.chance(0.45);
    if (do_leave) {
      const std::size_t i = gen.below(members.size());
      d.leave(members[i]);
      members[i] = members.back();
      members.pop_back();
    } else {
      node_id v = static_cast<node_id>(gen.below(g.node_count()));
      if (v == t.source()) v = (v + 1) % g.node_count();
      d.join(v);
      members.push_back(v);
    }
    if (step % 100 == 0) {
      // Incremental add/subtract vs a fresh sum: identical links, so the
      // two can differ only by floating-point accumulation order.
      EXPECT_NEAR(d.link_cost(), rebuild_weighted_cost(t, w, members), 1e-9)
          << "diverged at step " << step;
      EXPECT_EQ(d.link_count(), delivery_tree_size(t, members));
    }
  }
  while (!members.empty()) {
    d.leave(members.back());
    members.pop_back();
  }
  EXPECT_EQ(d.link_cost(), 0.0);
  EXPECT_EQ(d.link_count(), 0u);
}

}  // namespace
}  // namespace mcast
