// Contract helpers: the exception types and messages API misuse produces.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/contract.hpp"

namespace mcast {
namespace {

TEST(contract, expects_passes_on_true) {
  EXPECT_NO_THROW(expects(true, "never fires"));
}

TEST(contract, expects_throws_invalid_argument) {
  EXPECT_THROW(expects(false, "boom"), std::invalid_argument);
}

TEST(contract, expects_message_carries_prefix_and_reason) {
  try {
    expects(false, "k must be >= 2");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mcast"), std::string::npos);
    EXPECT_NE(what.find("k must be >= 2"), std::string::npos);
  }
}

TEST(contract, expects_in_range_throws_out_of_range) {
  EXPECT_NO_THROW(expects_in_range(true, "fine"));
  EXPECT_THROW(expects_in_range(false, "index"), std::out_of_range);
}

}  // namespace
}  // namespace mcast
