// Observability registry + tracer checks: counter/gauge/histogram
// correctness, log2-bucket percentile semantics, the runtime kill switch,
// span ring-buffer wraparound, and determinism of the multi-thread merge.
//
// Snapshots are only taken after worker threads have joined, so even the
// multi-thread tests are exact (no torn reads of relaxed counters) and
// TSan-clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_json.hpp"
#include "obs/trace.hpp"

namespace mcast::obs {
namespace {

#if !defined(MCAST_OBS_DISABLED)

class obs_test : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_metrics();
    trace_disable();
    trace_clear();
  }
  void TearDown() override {
    set_enabled(true);
    reset_metrics();
    trace_disable();
    trace_clear();
  }
};

std::uint64_t counter_of(const metrics_snapshot& s, counter c) {
  return s.counters[static_cast<std::size_t>(c)];
}

TEST_F(obs_test, counters_accumulate_and_reset) {
  add(counter::bfs_passes);
  add(counter::bfs_passes, 4);
  add(counter::edges_scanned, 1000);
  metrics_snapshot s = snapshot();
  EXPECT_TRUE(s.compiled_in);
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(counter_of(s, counter::bfs_passes), 5u);
  EXPECT_EQ(counter_of(s, counter::edges_scanned), 1000u);
  EXPECT_EQ(counter_of(s, counter::dijkstra_passes), 0u);

  reset_metrics();
  s = snapshot();
  EXPECT_EQ(counter_of(s, counter::bfs_passes), 0u);
  EXPECT_EQ(counter_of(s, counter::edges_scanned), 0u);
}

TEST_F(obs_test, runtime_kill_switch_drops_updates) {
  add(counter::bfs_passes);
  set_enabled(false);
  EXPECT_FALSE(enabled());
  add(counter::bfs_passes);
  record(histogram::visited_per_pass, 10);
  gauge_max(gauge::sched_workers, 8);
  set_enabled(true);
  const metrics_snapshot s = snapshot();
  EXPECT_EQ(counter_of(s, counter::bfs_passes), 1u);
  EXPECT_EQ(s.at(histogram::visited_per_pass).count, 0u);
  EXPECT_EQ(s.gauges[static_cast<std::size_t>(gauge::sched_workers)], 0u);
}

TEST_F(obs_test, gauges_keep_the_maximum) {
  gauge_max(gauge::sched_workers, 3);
  gauge_max(gauge::sched_workers, 8);
  gauge_max(gauge::sched_workers, 5);
  const metrics_snapshot s = snapshot();
  EXPECT_EQ(s.gauges[static_cast<std::size_t>(gauge::sched_workers)], 8u);
}

TEST_F(obs_test, metric_names_are_wired) {
  EXPECT_STREQ(counter_name(counter::spt_cache_hits), "spt_cache.hits");
  EXPECT_STREQ(gauge_name(gauge::sched_workers), "sched.workers");
  EXPECT_STREQ(histogram_name(histogram::repair_latency_ns),
               "repair.latency_ns");
}

TEST_F(obs_test, histogram_count_sum_mean) {
  for (std::uint64_t v : {1u, 2u, 3u, 4u}) {
    record(histogram::visited_per_pass, v);
  }
  const histogram_summary h = snapshot().at(histogram::visited_per_pass);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

// Quantiles come from log2 buckets: the reported value is the inclusive
// upper bound 2^b - 1 of the bucket holding the ceil(q*count)-th sample,
// so it over-estimates by at most 2x and is exact for zeros and ones.
TEST_F(obs_test, histogram_percentiles_are_bucket_upper_bounds) {
  // 98 samples of 1, one of 100, one of 1000.
  for (int i = 0; i < 98; ++i) record(histogram::repair_latency_ns, 1);
  record(histogram::repair_latency_ns, 100);   // bucket [64, 127]
  record(histogram::repair_latency_ns, 1000);  // bucket [512, 1023]
  const histogram_summary h = snapshot().at(histogram::repair_latency_ns);
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.p50, 1.0);
  EXPECT_DOUBLE_EQ(h.p95, 1.0);
  EXPECT_DOUBLE_EQ(h.p99, 127.0);
}

TEST_F(obs_test, histogram_handles_zero_and_huge_values) {
  record(histogram::sched_task_ns, 0);
  record(histogram::sched_task_ns, ~std::uint64_t{0});
  const histogram_summary h = snapshot().at(histogram::sched_task_ns);
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.p50, 0.0);
  // The top bucket's upper bound is 2^64 - 1.
  EXPECT_DOUBLE_EQ(h.p99,
                   static_cast<double>(~std::uint64_t{0}));
}

TEST_F(obs_test, empty_histograms_serialize_as_finite_zeroes) {
  // Regression: an untouched histogram must report mean/percentiles as
  // plain 0, never NaN/Inf — NaN is not JSON, so one empty histogram
  // would make the whole metrics document unparseable.
  const histogram_summary empty{};
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  const metrics_snapshot s = snapshot();  // nothing recorded anywhere
  const json::value doc = metrics_to_json(s);
  const json::value* hists = doc.get("histograms");
  ASSERT_NE(hists, nullptr);
  const json::value* h = hists->get("repair.latency_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->get("count")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(h->get("mean")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(h->get("p50")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(h->get("p99")->as_number(), 0.0);

  // The serialized document must round-trip: a NaN anywhere would dump
  // as a token json::parse rejects.
  EXPECT_NO_THROW(json::parse(json::dump_compact(doc)));
}

TEST_F(obs_test, multi_thread_counters_merge_exactly) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        add(counter::nodes_visited);
        record(histogram::visited_per_pass, i % 7);
      }
      gauge_max(gauge::sched_workers, static_cast<std::uint64_t>(t + 1));
    });
  }
  for (std::thread& t : pool) t.join();
  const metrics_snapshot s = snapshot();
  EXPECT_EQ(counter_of(s, counter::nodes_visited), kThreads * kPerThread);
  EXPECT_EQ(s.at(histogram::visited_per_pass).count, kThreads * kPerThread);
  EXPECT_EQ(s.gauges[static_cast<std::size_t>(gauge::sched_workers)],
            static_cast<std::uint64_t>(kThreads));
}

TEST_F(obs_test, derived_rates) {
  add(counter::spt_cache_hits, 3);
  add(counter::spt_cache_misses, 1);
  add(counter::sched_busy_ns, 80);
  add(counter::sched_worker_ns, 100);
  add(counter::bfs_passes, 2);
  add(counter::dijkstra_passes, 1);
  const metrics_snapshot s = snapshot();
  EXPECT_DOUBLE_EQ(spt_cache_hit_rate(s), 0.75);
  EXPECT_DOUBLE_EQ(scheduler_busy_fraction(s), 0.8);
  EXPECT_EQ(traversal_passes(s), 3u);
}

TEST_F(obs_test, summary_renders_nonzero_metrics) {
  add(counter::spt_cache_hits, 9);
  add(counter::spt_cache_misses, 1);
  std::ostringstream out;
  render_metrics_summary(out, snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("spt_cache.hits"), std::string::npos);
  EXPECT_NE(text.find("90.0%"), std::string::npos);
  // Zero counters stay out of the table.
  EXPECT_EQ(text.find("repair.trees"), std::string::npos);
}

TEST_F(obs_test, spans_record_nested_scopes) {
  trace_enable();
  {
    MCAST_OBS_SPAN("outer");
    MCAST_OBS_SPAN(std::string("inner"));
  }
  trace_disable();
  const trace_dump dump = trace_collect();
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.dropped, 0u);
  const trace_event* outer = nullptr;
  const trace_event* inner = nullptr;
  for (const trace_event& e : dump.events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner scope is contained in the outer one; both land on the same
  // lane (the thread's shard id).
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_GE(outer->start_ns + outer->dur_ns, inner->start_ns + inner->dur_ns);
}

TEST_F(obs_test, spans_inherit_the_installed_trace_context) {
  trace_enable();
  {
    trace_scope scope(trace_context{0xabcull, 0});
    MCAST_OBS_SPAN("outer");
    MCAST_OBS_SPAN("inner");  // same scope: chains under outer
  }
  {
    MCAST_OBS_SPAN("untagged");  // no context: the id triple stays 0
  }
  trace_disable();
  const trace_dump dump = trace_collect();
  const trace_event* outer = nullptr;
  const trace_event* inner = nullptr;
  const trace_event* untagged = nullptr;
  for (const trace_event& e : dump.events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
    if (e.name == "untagged") untagged = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(untagged, nullptr);
  EXPECT_EQ(outer->trace_id, 0xabcull);
  EXPECT_EQ(inner->trace_id, 0xabcull);
  EXPECT_NE(outer->span_id, 0u);
  EXPECT_EQ(outer->parent_id, 0u);  // root of its request
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(untagged->trace_id, 0u);
  EXPECT_EQ(untagged->span_id, 0u);
}

TEST_F(obs_test, context_survives_while_tracing_is_off) {
  // The access log attributes records through current_trace() even when
  // the span rings are not running, so contexts must work regardless.
  EXPECT_EQ(current_trace().trace_id, 0u);
  {
    trace_scope scope(trace_context{77, 5});
    EXPECT_EQ(current_trace().trace_id, 77u);
    EXPECT_EQ(current_trace().parent_span, 5u);
  }
  EXPECT_EQ(current_trace().trace_id, 0u);
}

TEST_F(obs_test, chrome_trace_emits_id_args_and_cross_lane_flows) {
  trace_dump dump;
  // A two-lane trace: the root on lane 1, a child chunk on lane 2.
  dump.events.push_back({"request", 1000, 5000, 1, 0xabcull, 0x1ull, 0});
  dump.events.push_back(
      {"scatter.chunk", 2000, 1000, 2, 0xabcull, 0x2ull, 0x1ull});
  std::ostringstream out;
  write_chrome_trace(out, dump);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"trace_id\": \"0000000000000abc\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"parent\": \"0000000000000001\""), std::string::npos)
      << text;
  // The trace crosses lanes, so flow events bind them in the viewer.
  EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos) << text;

  // A single-lane trace needs no flows.
  trace_dump one_lane;
  one_lane.events.push_back({"request", 1000, 5000, 1, 0xb0bull, 0x3ull, 0});
  std::ostringstream out2;
  write_chrome_trace(out2, one_lane);
  EXPECT_EQ(out2.str().find("\"ph\": \"s\""), std::string::npos);
}

TEST_F(obs_test, spans_cost_nothing_while_disabled) {
  {
    MCAST_OBS_SPAN("ignored");
  }
  trace_enable();
  trace_disable();
  EXPECT_TRUE(trace_collect().events.empty());
}

TEST_F(obs_test, ring_buffer_wraps_and_counts_drops) {
  trace_enable(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    span s("s" + std::to_string(i));
  }
  trace_disable();
  const trace_dump dump = trace_collect();
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.dropped, 6u);
  // The survivors are the newest four, oldest-first.
  EXPECT_EQ(dump.events[0].name, "s6");
  EXPECT_EQ(dump.events[3].name, "s9");
}

TEST_F(obs_test, multi_thread_trace_merge_is_deterministic) {
  trace_enable();
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        span s("t" + std::to_string(t) + "." + std::to_string(i));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  trace_disable();
  const trace_dump a = trace_collect();
  const trace_dump b = trace_collect();
  ASSERT_EQ(a.events.size(), 200u);
  ASSERT_EQ(b.events.size(), 200u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].name, b.events[i].name);
    EXPECT_EQ(a.events[i].start_ns, b.events[i].start_ns);
    EXPECT_EQ(a.events[i].tid, b.events[i].tid);
  }
  // Ordered by (start_ns, tid, name).
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_LE(a.events[i - 1].start_ns, a.events[i].start_ns);
  }
}

TEST_F(obs_test, chrome_trace_json_shape) {
  trace_dump dump;
  dump.events.push_back({"alpha \"quoted\"", 1000, 2000, 1});
  dump.events.push_back({"beta", 2500, 500, 2});
  dump.dropped = 3;
  std::ostringstream out;
  write_chrome_trace(out, dump);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("alpha \\\"quoted\\\""), std::string::npos);
  // Timestamps are rebased to the earliest event (1000ns -> 0us).
  EXPECT_NE(text.find("\"ts\": 0.000"), std::string::npos);
  EXPECT_NE(text.find("\"ts\": 1.500"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\": 3"), std::string::npos);
}

#else  // MCAST_OBS_DISABLED

TEST(obs_disabled, everything_is_a_no_op) {
  add(counter::bfs_passes, 100);
  record(histogram::visited_per_pass, 10);
  gauge_max(gauge::sched_workers, 4);
  const metrics_snapshot s = snapshot();
  EXPECT_FALSE(s.compiled_in);
  for (std::uint64_t c : s.counters) EXPECT_EQ(c, 0u);
  trace_enable();
  {
    MCAST_OBS_SPAN("nothing");
  }
  EXPECT_FALSE(trace_enabled());
  EXPECT_TRUE(trace_collect().events.empty());
}

#endif  // MCAST_OBS_DISABLED

}  // namespace
}  // namespace mcast::obs
