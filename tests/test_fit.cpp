// Least-squares fitting: exact recovery, noise robustness, windowing.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/fit.hpp"
#include "sim/rng.hpp"

namespace mcast {
namespace {

TEST(fit_linear, exact_line) {
  const linear_fit f = fit_linear({0.0, 1.0, 2.0, 3.0}, {1.0, 3.0, 5.0, 7.0});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_EQ(f.points, 4u);
}

TEST(fit_linear, constant_y) {
  const linear_fit f = fit_linear({0.0, 1.0, 2.0}, {5.0, 5.0, 5.0});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.r_squared, 1.0);
}

TEST(fit_linear, noisy_line_recovers_parameters) {
  rng gen(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = i * 0.01;
    x.push_back(xi);
    y.push_back(-1.5 * xi + 4.0 + (gen.uniform() - 0.5) * 0.1);
  }
  const linear_fit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, -1.5, 0.02);
  EXPECT_NEAR(f.intercept, 4.0, 0.02);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(fit_linear, validation) {
  EXPECT_THROW(fit_linear({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({2.0, 2.0}, {1.0, 3.0}), std::invalid_argument);
}

TEST(fit_power_law, exact_recovery) {
  std::vector<double> x, y;
  for (double xi : {1.0, 2.0, 5.0, 10.0, 50.0, 100.0}) {
    x.push_back(xi);
    y.push_back(3.0 * std::pow(xi, 0.8));
  }
  const power_law_fit f = fit_power_law(x, y);
  EXPECT_NEAR(f.exponent, 0.8, 1e-10);
  EXPECT_NEAR(f.amplitude, 3.0, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(fit_power_law, negative_exponent) {
  std::vector<double> x, y;
  for (double xi : {1.0, 4.0, 9.0, 16.0}) {
    x.push_back(xi);
    y.push_back(2.0 / xi);
  }
  const power_law_fit f = fit_power_law(x, y);
  EXPECT_NEAR(f.exponent, -1.0, 1e-10);
}

TEST(fit_power_law, rejects_nonpositive_values) {
  EXPECT_THROW(fit_power_law({0.0, 1.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {1.0, -1.0}), std::invalid_argument);
}

TEST(fit_power_law_windowed, selects_regime) {
  // Mixture: exact m^0.8 in [10, 1000], garbage outside.
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {100.0, 0.001};
  for (double xi = 10.0; xi <= 1000.0; xi *= 2.0) {
    x.push_back(xi);
    y.push_back(std::pow(xi, 0.8));
  }
  x.push_back(1e6);
  y.push_back(1.0);
  const power_law_fit f = fit_power_law_windowed(x, y, 10.0, 1000.0);
  EXPECT_NEAR(f.exponent, 0.8, 1e-9);
  EXPECT_EQ(f.points, 7u);
}

TEST(fit_power_law_windowed, empty_window_throws) {
  EXPECT_THROW(fit_power_law_windowed({1.0, 2.0}, {1.0, 2.0}, 10.0, 20.0),
               std::invalid_argument);
  EXPECT_THROW(fit_power_law_windowed({1.0, 2.0}, {1.0, 2.0}, 20.0, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcast
