// Delivery trees: exact link counts on hand-checkable fixtures plus the
// structural invariants every multicast tree must satisfy.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "sim/rng.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

TEST(delivery_tree, single_receiver_is_unicast_path) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  for (node_id v = 1; v < g.node_count(); ++v) {
    const node_id r[] = {v};
    EXPECT_EQ(delivery_tree_size(t, r), t.distance(v));
  }
}

TEST(delivery_tree, sibling_leaves_share_path) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  // Leaves 7 and 8 share 0-1-3; tree is 0-1,1-3,3-7,3-8 = 4 links.
  const node_id r[] = {7, 8};
  EXPECT_EQ(delivery_tree_size(t, r), 4u);
}

TEST(delivery_tree, opposite_leaves_share_nothing) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  const node_id r[] = {7, 14};
  EXPECT_EQ(delivery_tree_size(t, r), 6u);
}

TEST(delivery_tree, all_nodes_gives_spanning_tree) {
  const graph g = make_grid(4, 4);
  const source_tree t(g, 5);
  std::vector<node_id> everyone;
  for (node_id v = 0; v < g.node_count(); ++v) everyone.push_back(v);
  EXPECT_EQ(delivery_tree_size(t, everyone), g.node_count() - 1u);
}

TEST(delivery_tree, repeats_do_not_grow_tree) {
  const graph g = make_kary_tree(3, 2);
  const source_tree t(g, 0);
  const node_id once[] = {5};
  const node_id thrice[] = {5, 5, 5};
  EXPECT_EQ(delivery_tree_size(t, once), delivery_tree_size(t, thrice));
}

TEST(delivery_tree, source_as_receiver_adds_nothing) {
  const graph g = make_ring(8);
  const source_tree t(g, 0);
  const node_id r[] = {0};
  EXPECT_EQ(delivery_tree_size(t, r), 0u);
}

TEST(delivery_tree, builder_incremental_gains_sum_to_total) {
  const graph g = make_grid(5, 5);
  const source_tree t(g, 0);
  rng gen(3);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  const std::vector<node_id> receivers = sample_with_replacement(universe, 40, gen);
  delivery_tree_builder b(t);
  std::size_t gain_total = 0;
  for (node_id v : receivers) gain_total += b.add_receiver(v);
  EXPECT_EQ(gain_total, b.link_count());
  EXPECT_EQ(b.link_count(), delivery_tree_size(t, receivers));
}

TEST(delivery_tree, builder_gain_bounded_by_distance) {
  const graph g = make_kary_tree(2, 5);
  const source_tree t(g, 0);
  delivery_tree_builder b(t);
  rng gen(4);
  for (int i = 0; i < 100; ++i) {
    const node_id v = static_cast<node_id>(gen.below(g.node_count()));
    const std::size_t before = b.link_count();
    const std::size_t gain = b.add_receiver(v);
    EXPECT_LE(gain, t.distance(v));
    EXPECT_EQ(b.link_count(), before + gain);
  }
}

TEST(delivery_tree, builder_covers_and_distinct_count) {
  const graph g = make_kary_tree(2, 3);
  const source_tree t(g, 0);
  delivery_tree_builder b(t);
  EXPECT_TRUE(b.covers(0));
  EXPECT_FALSE(b.covers(7));
  b.add_receiver(7);
  EXPECT_TRUE(b.covers(7));
  EXPECT_TRUE(b.covers(3));  // on the path
  EXPECT_TRUE(b.covers(1));
  EXPECT_FALSE(b.covers(8));
  b.add_receiver(7);
  EXPECT_EQ(b.distinct_receiver_count(), 1u);
  b.add_receiver(8);
  EXPECT_EQ(b.distinct_receiver_count(), 2u);
}

TEST(delivery_tree, builder_reset) {
  const graph g = make_kary_tree(2, 4);
  const source_tree t(g, 0);
  delivery_tree_builder b(t);
  b.add_receiver(17);
  b.add_receiver(23);
  const std::size_t first = b.link_count();
  b.reset();
  EXPECT_EQ(b.link_count(), 0u);
  EXPECT_EQ(b.distinct_receiver_count(), 0u);
  EXPECT_FALSE(b.covers(17));
  b.add_receiver(17);
  b.add_receiver(23);
  EXPECT_EQ(b.link_count(), first) << "reset must restore exact behavior";
}

TEST(delivery_tree, links_are_actual_graph_edges_forming_tree) {
  waxman_params p;
  p.nodes = 120;
  const graph g = make_waxman(p, 6);
  const source_tree t(g, 0);
  rng gen(8);
  const std::vector<node_id> receivers =
      sample_distinct(all_sites_except(g, 0), 25, gen);
  const std::vector<edge> links = delivery_tree_links(t, receivers);
  EXPECT_EQ(links.size(), delivery_tree_size(t, receivers));
  for (const edge& e : links) {
    EXPECT_TRUE(g.has_edge(e.a, e.b));
    EXPECT_EQ(t.distance(e.a), t.distance(e.b) + 1) << "link must point rootward";
  }
  // Every receiver's full path must be covered.
  std::vector<char> on_tree(g.node_count(), 0);
  on_tree[0] = 1;
  for (const edge& e : links) on_tree[e.a] = 1;
  for (node_id r : receivers) {
    for (node_id w = r; w != invalid_node; w = t.parent(w)) {
      EXPECT_TRUE(on_tree[w]);
    }
  }
}

TEST(delivery_tree, monotone_in_receiver_set) {
  const graph g = make_grid(6, 6);
  const source_tree t(g, 0);
  rng gen(10);
  std::vector<node_id> receivers =
      sample_distinct(all_sites_except(g, 0), 20, gen);
  std::size_t prev = 0;
  for (std::size_t count = 1; count <= receivers.size(); ++count) {
    const std::size_t size = delivery_tree_size(
        t, std::span<const node_id>(receivers.data(), count));
    EXPECT_GE(size, prev);
    prev = size;
  }
}

TEST(delivery_tree, unreachable_receiver_throws) {
  graph_builder gb(4);
  gb.add_edge(0, 1);
  gb.add_edge(2, 3);
  const graph g = gb.build();
  const source_tree t(g, 0);
  delivery_tree_builder b(t);
  EXPECT_THROW(b.add_receiver(2), std::invalid_argument);
  EXPECT_THROW(b.add_receiver(9), std::out_of_range);
}

}  // namespace
}  // namespace mcast
