// Integration tests: the paper's qualitative claims, end to end, on
// scaled-down versions of its actual topology suite.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fit.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/reachability.hpp"
#include "core/study.hpp"
#include "graph/components.hpp"
#include "multicast/affinity.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "topo/catalog.hpp"
#include "topo/kary.hpp"

namespace mcast {
namespace {

TEST(integration, chuang_sirbu_exponent_near_08_across_scaled_suite) {
  // Figure 1, scaled down: every topology style should fit a power law
  // with exponent in a band around 0.8.
  const auto suite = scaled_networks(paper_networks(), 400);
  study_config c;
  c.monte_carlo.receiver_sets = 12;
  c.monte_carlo.sources = 8;
  c.monte_carlo.seed = 11;
  c.grid_points = 12;
  const study_result r = run_scaling_study(suite, c);
  ASSERT_EQ(r.networks.size(), 8u);
  for (const auto& n : r.networks) {
    // At this scaled-down size the small/saturating topologies (ARPA,
    // ti5000-style) sit lower, exactly as the paper's own Fig 1 scatter
    // does; the full-size band is checked by bench/fig1_*.
    EXPECT_GT(n.law.exponent(), 0.5) << n.name;
    EXPECT_LT(n.law.exponent(), 1.0) << n.name;
    EXPECT_GT(n.law.r_squared(), 0.97) << n.name;
  }
  EXPECT_NEAR(r.mean_exponent(), 0.75, 0.12);
}

TEST(integration, eq30_predicts_measured_tree_size) {
  // Section 4's claim: feed the *measured* S(r) into Eq 30 and you predict
  // the *measured* L̂(n). The "receivers equally likely under any level-l
  // link" assumption is best on homogeneous random graphs (within ~12%);
  // the heterogeneous transit-stub overshoots more but stays in the
  // ballpark (< 30%) — both recorded here.
  struct case_spec {
    const char* name;
    double tolerance;
  };
  const case_spec cases[] = {{"r100", 0.30}, {"ts1000", 0.30}};
  for (const case_spec& spec : cases) {
    const graph g = find_network(spec.name).build(5);
    ASSERT_TRUE(is_connected(g));
    rng gen(17);
    const node_id source = static_cast<node_id>(gen.below(g.node_count()));
    const reachability_profile prof = reachability_from(g, source);
    const source_tree tree(g, source);
    const std::vector<node_id> universe = all_sites_except(g, source);
    delivery_tree_builder builder(tree);
    for (std::size_t n : {4u, 16u, 64u}) {
      double total = 0.0;
      constexpr int reps = 80;
      for (int rep = 0; rep < reps; ++rep) {
        builder.reset();
        for (node_id v : sample_with_replacement(universe, n, gen)) {
          builder.add_receiver(v);
        }
        total += static_cast<double>(builder.link_count());
      }
      const double measured = total / reps;
      const double predicted =
          general_tree_size_all_sites(prof.s, static_cast<double>(n));
      EXPECT_NEAR(predicted / measured, 1.0, spec.tolerance)
          << spec.name << " n=" << n;
      EXPECT_GT(predicted, 0.0);
    }
  }
}

TEST(integration, fig6_linearity_dichotomy) {
  // Fig 6: L̂(n)/(n·ū) is linear in ln n for exponential-T(r) networks
  // (ts1000) and visibly less linear for sub-exponential ones (ti5000).
  auto linearity = [](const graph& g, std::uint64_t seed) {
    rng gen(seed);
    std::vector<double> xs, ys;
    for (std::size_t n = 1; n <= 2048; n *= 4) {
      double acc = 0.0;
      constexpr int reps = 30;
      for (int rep = 0; rep < reps; ++rep) {
        const node_id src = static_cast<node_id>(gen.below(g.node_count()));
        const source_tree tree(g, src);
        const std::vector<node_id> universe = all_sites_except(g, src);
        delivery_tree_builder builder(tree);
        std::uint64_t path_sum = 0;
        for (node_id v : sample_with_replacement(universe, n, gen)) {
          builder.add_receiver(v);
          path_sum += tree.distance(v);
        }
        const double ubar = static_cast<double>(path_sum) / static_cast<double>(n);
        acc += static_cast<double>(builder.link_count()) / (ubar * static_cast<double>(n));
      }
      xs.push_back(std::log(static_cast<double>(n)));
      ys.push_back(acc / reps);
    }
    return fit_linear(xs, ys).r_squared;
  };
  const double ts = linearity(find_network("ts1000").build(5), 9);
  const double ti = linearity(find_network("ti5000").build(5), 9);
  EXPECT_GT(ts, 0.97);
  EXPECT_GT(ts, ti);
}

TEST(integration, reachability_dichotomy_across_suite) {
  // Fig 7: power-law "Internet/AS" profiles look exponential (high R² of
  // ln T vs r); TIERS and MBone profiles look sub-exponential.
  rng gen(23);
  const auto suite = scaled_networks(paper_networks(), 1200);
  double exp_like_r2 = 0.0;
  double sub_exp_r2 = 1.0;
  for (const auto& e : suite) {
    if (e.name != "AS" && e.name != "ti5000") continue;
    const graph g = largest_component(e.build(3));
    const auto fit = fit_reachability_growth(mean_reachability(g, 12, gen));
    if (e.name == "AS") exp_like_r2 = fit.r_squared;
    if (e.name == "ti5000") sub_exp_r2 = fit.r_squared;
  }
  EXPECT_GT(exp_like_r2, sub_exp_r2);
}

TEST(integration, affinity_ordering_on_binary_tree) {
  // Fig 9's ordering at fixed n: L∞ <= L_β>0 <= L_0 <= L_β<0 <= L_-∞.
  const kary_shape shape(2, 8);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  const kary_distance_oracle oracle(shape);
  const std::size_t n = 24;

  auto chain = [&](double beta) {
    affinity_chain_params params;
    params.beta = beta;
    params.burn_in_sweeps = 25;
    params.sample_sweeps = 10;
    rng gen(31);
    return sample_affinity_tree_size(tree, universe, n, oracle, params, gen)
        .mean_tree_size;
  };
  rng gen(41);
  const auto packed = greedy_affinity_trajectory(tree, universe, n, gen);
  const auto spread = greedy_disaffinity_trajectory(tree, universe, n, gen);
  const double l_inf = static_cast<double>(packed.back());
  const double l_minus_inf = static_cast<double>(spread.back());
  const double l_pos = chain(5.0);
  const double l_zero = chain(0.0);
  const double l_neg = chain(-5.0);

  EXPECT_LE(l_inf, l_pos + 1e-9);
  EXPECT_LT(l_pos, l_zero);
  EXPECT_LT(l_zero, l_neg);
  EXPECT_LE(l_neg, l_minus_inf + 1e-9);
}

TEST(integration, multicast_beats_unicast_everywhere) {
  // The paper's premise: L(m) < m·ū for every m > 1 on every topology.
  const auto suite = scaled_networks(paper_networks(), 300);
  study_config c;
  c.monte_carlo.receiver_sets = 6;
  c.monte_carlo.sources = 4;
  c.grid_points = 8;
  const study_result r = run_scaling_study(suite, c);
  for (const auto& net : r.networks) {
    for (const auto& p : net.measurement) {
      if (p.group_size <= 1) continue;
      EXPECT_LT(p.ratio_mean, static_cast<double>(p.group_size)) << net.name;
    }
  }
}

}  // namespace
}  // namespace mcast
