// Transit-stub generator: node accounting, connectivity, density targets.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "topo/transit_stub.hpp"

namespace mcast {
namespace {

TEST(transit_stub, node_count_formula) {
  transit_stub_params p;
  p.transit_domains = 3;
  p.transit_domain_size = 4;
  p.stubs_per_transit_node = 2;
  p.stub_domain_size = 5;
  // 3*4*(1 + 2*5) = 132.
  EXPECT_EQ(transit_stub_node_count(p), 132u);
  EXPECT_EQ(make_transit_stub(p, 1).node_count(), 132u);
}

TEST(transit_stub, connected_by_construction) {
  transit_stub_params p;
  p.transit_domains = 4;
  p.transit_domain_size = 5;
  p.stubs_per_transit_node = 2;
  p.stub_domain_size = 4;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(is_connected(make_transit_stub(p, seed))) << "seed " << seed;
  }
}

TEST(transit_stub, deterministic_given_seed) {
  const transit_stub_params p = ts1000_params();
  const graph a = make_transit_stub(p, 42);
  const graph b = make_transit_stub(p, 42);
  EXPECT_EQ(a.edges(), b.edges());
  const graph c = make_transit_stub(p, 43);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(transit_stub, ts1000_matches_paper_character) {
  const graph g = make_transit_stub(ts1000_params(), 7);
  EXPECT_EQ(g.node_count(), 1000u);
  const double deg = compute_degree_stats(g).mean;
  // Paper: average degree 3.6 for ts1000.
  EXPECT_GT(deg, 3.0);
  EXPECT_LT(deg, 4.2);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.name(), "ts1000");
}

TEST(transit_stub, ts1008_matches_paper_character) {
  const graph g = make_transit_stub(ts1008_params(), 7);
  EXPECT_EQ(g.node_count(), 1008u);
  const double deg = compute_degree_stats(g).mean;
  // Paper: average degree 7.5 for ts1008.
  EXPECT_GT(deg, 6.6);
  EXPECT_LT(deg, 8.4);
  EXPECT_TRUE(is_connected(g));
}

TEST(transit_stub, shortcut_edges_increase_density) {
  transit_stub_params base;
  base.transit_domains = 3;
  base.transit_domain_size = 4;
  base.stubs_per_transit_node = 2;
  base.stub_domain_size = 5;
  transit_stub_params shortcutted = base;
  shortcutted.extra_stub_stub_edges = 60.0;
  const graph g0 = make_transit_stub(base, 5);
  const graph g1 = make_transit_stub(shortcutted, 5);
  EXPECT_GT(g1.edge_count(), g0.edge_count() + 30);
}

TEST(transit_stub, minimal_configuration) {
  transit_stub_params p;
  p.transit_domains = 1;
  p.transit_domain_size = 1;
  p.stubs_per_transit_node = 0;
  p.stub_domain_size = 1;
  const graph g = make_transit_stub(p, 1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(transit_stub, invalid_parameters_throw) {
  transit_stub_params p;
  p.transit_domains = 0;
  EXPECT_THROW(make_transit_stub(p, 1), std::invalid_argument);
  p = transit_stub_params{};
  p.transit_edge_prob = 1.5;
  EXPECT_THROW(make_transit_stub(p, 1), std::invalid_argument);
  p = transit_stub_params{};
  p.extra_stub_stub_edges = -1.0;
  EXPECT_THROW(make_transit_stub(p, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
