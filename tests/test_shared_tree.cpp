// Shared (core-based) trees: core selection, footprint accounting, and the
// Wei-Estrin-style comparison against source-specific trees.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/shared_tree.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

TEST(choose_core, strategies_return_valid_nodes) {
  waxman_params p;
  p.nodes = 60;
  const graph g = make_waxman(p, 3);
  rng gen(1);
  for (core_strategy s : {core_strategy::random, core_strategy::degree_center,
                          core_strategy::path_center}) {
    const node_id c = choose_core(g, s, gen);
    EXPECT_LT(c, g.node_count());
  }
}

TEST(choose_core, degree_center_picks_hub) {
  const graph g = make_star(9);
  rng gen(2);
  EXPECT_EQ(choose_core(g, core_strategy::degree_center, gen), 0u);
}

TEST(choose_core, path_center_prefers_middle_of_path) {
  const graph g = make_path(31);
  rng gen(7);
  // With many probes the minimum-eccentricity candidate is near the middle.
  const node_id c = choose_core(g, core_strategy::path_center, gen, 64);
  EXPECT_GT(c, 7u);
  EXPECT_LT(c, 23u);
}

TEST(choose_core, empty_graph_throws) {
  rng gen(1);
  EXPECT_THROW(choose_core(graph{}, core_strategy::random, gen),
               std::invalid_argument);
}

TEST(shared_tree, core_size_is_delivery_tree_at_core) {
  const graph g = make_kary_tree(2, 4);
  const source_tree core_tree(g, 3);
  const node_id receivers[] = {17, 22, 9};
  EXPECT_EQ(shared_tree_core_size(core_tree, receivers),
            delivery_tree_size(core_tree, receivers));
}

TEST(shared_tree, adds_source_tail) {
  const graph g = make_path(10);
  const source_tree core_tree(g, 0);  // core at one end
  const node_id receivers[] = {3};
  // receivers->core tree = 3 links; source 7 adds dist(7, core) = 7.
  EXPECT_EQ(shared_tree_core_size(core_tree, receivers), 3u);
  EXPECT_EQ(shared_tree_size(core_tree, 7, receivers), 10u);
  // Source at the core: no tail.
  EXPECT_EQ(shared_tree_size(core_tree, 0, receivers), 3u);
}

TEST(shared_tree, unreachable_source_throws) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph g = b.build();
  const source_tree core_tree(g, 0);
  const node_id receivers[] = {1};
  EXPECT_THROW(shared_tree_size(core_tree, 2, receivers), std::invalid_argument);
  EXPECT_THROW(shared_tree_size(core_tree, 9, receivers), std::out_of_range);
}

TEST(compare, shared_and_source_trees_have_comparable_cost) {
  // Wei & Estrin's finding (the comparison the paper's footnote 1 defers
  // to): center-based shared trees cost about the same total links as
  // source-specific trees — sometimes slightly less (one tree amortized),
  // sometimes more (core detour + source tail). Assert the ratio stays in
  // a modest band around 1 rather than a one-sided bound.
  waxman_params p;
  p.nodes = 100;
  const graph g = make_waxman(p, 5);
  const auto rows = compare_source_vs_shared(g, {2, 8, 32},
                                             core_strategy::path_center,
                                             /*receiver_sets=*/10,
                                             /*sources=*/8, /*seed=*/11);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_GT(row.shared_over_source, 0.8) << "m=" << row.group_size;
    EXPECT_LT(row.shared_over_source, 2.0) << "m=" << row.group_size;
    EXPECT_GT(row.source_tree_links, 0.0);
  }
}

TEST(compare, shared_tree_overhead_shrinks_with_group_size) {
  // As m grows both trees approach spanning trees, so the ratio tends
  // toward 1 — the Wei-Estrin observation.
  waxman_params p;
  p.nodes = 120;
  const graph g = make_waxman(p, 9);
  const auto rows = compare_source_vs_shared(g, {2, 60, 119},
                                             core_strategy::path_center,
                                             12, 10, 13);
  EXPECT_GT(rows.front().shared_over_source, rows.back().shared_over_source);
  EXPECT_LT(rows.back().shared_over_source, 1.15);
}

TEST(compare, deterministic_and_validated) {
  const graph g = make_grid(8, 8);
  const auto a = compare_source_vs_shared(g, {4}, core_strategy::random, 4, 4, 5);
  const auto b = compare_source_vs_shared(g, {4}, core_strategy::random, 4, 4, 5);
  EXPECT_DOUBLE_EQ(a[0].shared_tree_links, b[0].shared_tree_links);

  EXPECT_THROW(compare_source_vs_shared(g, {0}, core_strategy::random, 4, 4, 5),
               std::invalid_argument);
  EXPECT_THROW(compare_source_vs_shared(g, {64}, core_strategy::random, 4, 4, 5),
               std::invalid_argument);
  EXPECT_THROW(compare_source_vs_shared(g, {4}, core_strategy::random, 0, 4, 5),
               std::invalid_argument);

  graph_builder bb(4);
  bb.add_edge(0, 1);
  bb.add_edge(2, 3);
  EXPECT_THROW(compare_source_vs_shared(bb.build(), {1}, core_strategy::random,
                                        4, 4, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcast
