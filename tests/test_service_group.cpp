// Loopback integration tests for the stateful group_* service ops:
//   * concurrent clients churning disjoint groups against a 4-shard core
//     over real sockets — every response byte-identical to a serial
//     replay through a 1-shard core and the flat query_service, and the
//     merged group_list renders identically at every shard count;
//   * a group op after shutdown gets the typed overloaded error;
//   * unknown groups / precondition failures are bad_request, never
//     internal_error;
//   * batch envelopes carry group ops unchanged at any shard count.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"

namespace mcast::service {
namespace {

using net::line_reader;
using net::line_server;
using net::server_config;
using net::unique_fd;

constexpr int kReadTimeoutMs = 60000;

server_config service_config(std::size_t workers, std::size_t queue) {
  server_config config;
  config.port = 0;
  config.workers = workers;
  config.queue_capacity = queue;
  config.overload_response =
      error_response(error_code::overloaded, "connection queue full");
  config.overlong_response =
      error_response(error_code::limit_exceeded, "request line too long");
  config.internal_error_response =
      error_response(error_code::internal_error, "handler failed");
  return config;
}

std::vector<std::string> roundtrip(std::uint16_t port,
                                   const std::vector<std::string>& requests) {
  unique_fd conn = net::connect_loopback(port);
  std::string batch;
  for (const std::string& r : requests) batch += r + "\n";
  if (!net::send_all(conn.get(), batch)) {
    ADD_FAILURE() << "send failed";
    return {};
  }
  std::vector<std::string> responses;
  line_reader reader(conn.get(), 1 << 22);
  std::string line;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const line_reader::status st = reader.read_line(line, kReadTimeoutMs);
    if (st != line_reader::status::line) {
      ADD_FAILURE() << "response " << i << " missing (status "
                    << static_cast<int>(st) << ")";
      return responses;
    }
    responses.push_back(line);
  }
  return responses;
}

/// One client's op sequence against its own group. Each client gets a
/// distinct topology_seed, so its groups live in a distinct scope
/// ("ARPA:<c>:0") — disjoint state, spread across the shard ring.
std::vector<std::string> client_requests(int c) {
  const std::string t =
      "\"topology\":\"ARPA\",\"topology_seed\":" + std::to_string(c);
  const std::string g = ",\"group\":\"g" + std::to_string(c) + "\"";
  const std::string site_a = std::to_string((c % 20) + 10);
  const std::string site_b = std::to_string((c + 7) % 25);
  return {
      "{\"op\":\"group_create\"," + t + g + ",\"source\":" +
          std::to_string(c % 10) + "}",
      "{\"op\":\"group_join\"," + t + g + ",\"site\":" + site_a +
          ",\"count\":2}",
      "{\"op\":\"group_join\"," + t + g + ",\"site\":" + site_b + "}",
      "{\"op\":\"group_stats\"," + t + g + "}",
      "{\"op\":\"group_leave\"," + t + g + ",\"site\":" + site_a + "}",
      "{\"op\":\"group_stats\"," + t + g + "}",
  };
}

TEST(service_group, concurrent_disjoint_groups_match_serial_replay) {
  obs::reset_metrics();
  sharded_config config;
  config.shards = 4;
  auto svc = std::make_shared<sharded_service>(config);
  line_server server(
      service_config(4, 64),
      [svc](const std::string& line) { return svc->handle(line); });

  constexpr int kClients = 16;
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) requests[c] = client_requests(c);

  std::vector<std::vector<std::string>> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        responses[c] = roundtrip(server.port(), requests[c]);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), requests[c].size()) << "client " << c;
  }
  // The merged listing, rendered while the 4-shard core is live.
  const std::string live_list = svc->handle("{\"op\":\"group_list\"}");

  const obs::metrics_snapshot snap = obs::snapshot();
  if (snap.compiled_in) {
    EXPECT_EQ(snap.at(obs::counter::svc_group_creates),
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(snap.at(obs::counter::svc_group_joins),
              static_cast<std::uint64_t>(2 * kClients));
    EXPECT_EQ(snap.at(obs::counter::svc_group_leaves),
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(snap.at(obs::counter::svc_group_stats),
              static_cast<std::uint64_t>(2 * kClients));
    EXPECT_EQ(snap.at(obs::counter::group_created),
              static_cast<std::uint64_t>(kClients));
  }

  // Byte-identity: every response must replay bit-for-bit through a fresh
  // 1-shard core and the flat (unsharded) service, driven serially —
  // group state is a pure function of the per-group op sequence, so the
  // concurrent interleaving above must not be observable.
  sharded_config one_config;
  one_config.shards = 1;
  sharded_service one_shard(one_config);
  query_service flat;
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < requests[c].size(); ++i) {
      EXPECT_EQ(responses[c][i], one_shard.handle(requests[c][i]))
          << "client " << c << " request " << i << " vs 1-shard";
      EXPECT_EQ(responses[c][i], flat.handle(requests[c][i]))
          << "client " << c << " request " << i << " vs flat";
    }
  }
  // The listing is shard-layout independent: the 4-shard merge renders
  // the same bytes as the 1-shard core and the monolith.
  EXPECT_EQ(live_list, one_shard.handle("{\"op\":\"group_list\"}"));
  EXPECT_EQ(live_list, flat.handle("{\"op\":\"group_list\"}"));

  server.shutdown();
  server.wait();
  svc->shutdown();
  one_shard.shutdown();
}

TEST(service_group, group_op_after_shutdown_gets_typed_overloaded_error) {
  sharded_config config;
  config.shards = 2;
  sharded_service svc(config);
  const std::string create = svc.handle(
      "{\"op\":\"group_create\",\"topology\":\"ARPA\",\"group\":\"g\"}");
  EXPECT_NE(create.find("\"ok\":true"), std::string::npos) << create;

  svc.shutdown();
  const std::string join = svc.handle(
      "{\"op\":\"group_join\",\"topology\":\"ARPA\",\"group\":\"g\","
      "\"site\":3}");
  EXPECT_NE(join.find("\"ok\":false"), std::string::npos) << join;
  EXPECT_NE(join.find("overloaded"), std::string::npos) << join;
}

TEST(service_group, precondition_failures_are_bad_request) {
  query_service flat;
  sharded_config config;
  config.shards = 2;
  sharded_service sharded(config);

  const std::vector<std::string> bad = {
      // Unknown group: stats, join, leave.
      "{\"op\":\"group_stats\",\"topology\":\"ARPA\",\"group\":\"nope\"}",
      "{\"op\":\"group_join\",\"topology\":\"ARPA\",\"group\":\"nope\","
      "\"site\":1}",
      "{\"op\":\"group_leave\",\"topology\":\"ARPA\",\"group\":\"nope\","
      "\"site\":1}",
      // Source out of range, bad mode, core knobs on a source-mode group.
      "{\"op\":\"group_create\",\"topology\":\"ARPA\",\"group\":\"g\","
      "\"source\":100000}",
      "{\"op\":\"group_create\",\"topology\":\"ARPA\",\"group\":\"g\","
      "\"mode\":\"anycast\"}",
      "{\"op\":\"group_create\",\"topology\":\"ARPA\",\"group\":\"g\","
      "\"core_seed\":3}",
  };
  for (const std::string& r : bad) {
    for (std::string resp : {flat.handle(r), sharded.handle(r)}) {
      EXPECT_NE(resp.find("\"ok\":false"), std::string::npos) << r;
      EXPECT_NE(resp.find("bad_request"), std::string::npos) << resp;
      EXPECT_EQ(resp.find("internal_error"), std::string::npos) << resp;
    }
  }

  // Stateful preconditions: duplicate create, site joined out of range,
  // leaving more instances than are joined.
  const std::string create =
      "{\"op\":\"group_create\",\"topology\":\"ARPA\",\"group\":\"g\"}";
  EXPECT_NE(flat.handle(create).find("\"ok\":true"), std::string::npos);
  const std::vector<std::string> stateful = {
      create,  // duplicate
      "{\"op\":\"group_join\",\"topology\":\"ARPA\",\"group\":\"g\","
      "\"site\":100000}",
      "{\"op\":\"group_leave\",\"topology\":\"ARPA\",\"group\":\"g\","
      "\"site\":2,\"count\":5}",
  };
  for (const std::string& r : stateful) {
    const std::string resp = flat.handle(r);
    EXPECT_NE(resp.find("bad_request"), std::string::npos) << resp;
    EXPECT_EQ(resp.find("internal_error"), std::string::npos) << resp;
  }
  sharded.shutdown();
}

TEST(service_group, batch_envelope_carries_group_ops_at_any_shard_count) {
  // One batch that creates a shared-tree group, mutates it, reads it back
  // and trips on an unknown op: the envelope must splice the same slot
  // bytes out of the monolith, a 1-shard core and a 4-shard core.
  const std::string batch =
      "{\"op\":\"batch\",\"id\":\"gb\",\"ops\":["
      "{\"op\":\"group_create\",\"topology\":\"ARPA\",\"group\":\"b\","
      "\"mode\":\"shared\",\"core_strategy\":\"degree_center\","
      "\"core_seed\":5},"
      "{\"op\":\"group_join\",\"topology\":\"ARPA\",\"group\":\"b\","
      "\"site\":9,\"count\":3},"
      "{\"op\":\"group_stats\",\"topology\":\"ARPA\",\"group\":\"b\"},"
      "{\"op\":\"nosuch\"},"
      "{\"op\":\"group_leave\",\"topology\":\"ARPA\",\"group\":\"b\","
      "\"site\":9},"
      "{\"op\":\"group_list\"}]}";

  query_service flat;
  const std::string expected = flat.handle(batch);
  EXPECT_NE(expected.find("\"ok\":true"), std::string::npos) << expected;

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{4}}) {
    sharded_config config;
    config.shards = shards;
    sharded_service svc(config);
    EXPECT_EQ(svc.handle(batch), expected) << shards << " shard(s)";
    svc.shutdown();
  }
}

}  // namespace
}  // namespace mcast::service
