// Asymptotic forms (Eqs 12, 14, 16, 18) against the exact expressions —
// the quantitative content of Figures 2, 3 and 4.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/kary_asymptotic.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/fit.hpp"
#include "analysis/series.hpp"

namespace mcast {
namespace {

TEST(kary_asymptotic, h_approx_is_line_through_origin) {
  EXPECT_DOUBLE_EQ(kary_h_approx(2.0, 0.0), 0.0);
  EXPECT_NEAR(kary_h_approx(4.0, 0.8), 0.4, 1e-12);
  EXPECT_NEAR(kary_h_approx(2.0, 1.0), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(kary_asymptotic, per_receiver_line_values) {
  // Eq 16 at x = 1: L̂/n = 1/ln k.
  EXPECT_NEAR(kary_tree_size_per_receiver_approx(2.0, 1.0),
              1.0 / std::log(2.0), 1e-12);
  // Slope in ln x must be -1/ln k.
  const double k = 4.0;
  const double y1 = kary_tree_size_per_receiver_approx(k, 0.01);
  const double y2 = kary_tree_size_per_receiver_approx(k, 0.1);
  EXPECT_NEAR(y1 - y2, std::log(10.0) / std::log(k), 1e-12);
}

TEST(kary_asymptotic, eq14_boundary_conditions) {
  EXPECT_NEAR(kary_tree_size_approx(2.0, 10, 0.0), 0.0, 1e-12);
  // L̂(1) ≈ D - (2 ln 2 - 1)/ln 2 ≈ D - 0.557: within an additive constant
  // of the true value D (the paper accepts an additive error here).
  EXPECT_NEAR(kary_tree_size_approx(2.0, 10, 1.0), 10.0, 1.0);
}

TEST(kary_asymptotic, eq16_matches_exact_in_linear_regime) {
  // Fig 3: for D/M < x < 1 the exact L̂(n)/n sits near the predicted line,
  // up to a small additive offset. Verify the SLOPE matches closely by
  // comparing differences (which cancel the offset).
  const unsigned k = 2, d = 17;
  const double m_sites = kary_leaf_count(k, d);
  const double x1 = 1e-3, x2 = 1e-2;
  const double exact1 = kary_tree_size_leaves(k, d, x1 * m_sites) / (x1 * m_sites);
  const double exact2 = kary_tree_size_leaves(k, d, x2 * m_sites) / (x2 * m_sites);
  const double approx1 = kary_tree_size_per_receiver_approx(k, x1);
  const double approx2 = kary_tree_size_per_receiver_approx(k, x2);
  EXPECT_NEAR(exact1 - exact2, approx1 - approx2, 0.05);
  // And the absolute value agrees within the paper's additive-constant slack.
  EXPECT_NEAR(exact1, approx1, 1.0);
}

TEST(kary_asymptotic, eq14_tracks_exact_within_additive_constant) {
  // The paper claims Eq 16 captures L̂(n)/n "to within an additive
  // constant" in the regime D < n < M; verify that per-receiver gap for
  // Eq 14 (whose large-n limit is Eq 16).
  const unsigned k = 2, d = 14;
  const double m_sites = kary_leaf_count(k, d);
  for (double n : {50.0, 500.0, 5000.0}) {
    ASSERT_LT(n, m_sites);
    const double exact = kary_tree_size_leaves(k, d, n) / n;
    const double approx = kary_tree_size_approx(2.0, d, n) / n;
    EXPECT_NEAR(approx, exact, 1.2) << "n=" << n;
  }
}

TEST(kary_asymptotic, chuang_sirbu_curve_basics) {
  EXPECT_DOUBLE_EQ(chuang_sirbu_curve(1.0), 1.0);
  EXPECT_NEAR(chuang_sirbu_curve(100.0), std::pow(100.0, 0.8), 1e-9);
  EXPECT_NEAR(chuang_sirbu_curve(10.0, 0.5, 2.0), 2.0 * std::sqrt(10.0), 1e-9);
}

TEST(kary_asymptotic, exact_L_of_m_is_close_to_power_law_08) {
  // Fig 4's claim: even though Eq 18 is not a power law, a log-log fit of
  // the k-ary L(m)/D comes out near exponent 0.8.
  for (unsigned k : {2u, 4u}) {
    const unsigned d = k == 2 ? 14 : 7;
    const double m_sites = kary_leaf_count(k, d);
    std::vector<double> ms, ys;
    for (double m = 2.0; m < 0.3 * m_sites; m *= 1.6) {
      ms.push_back(m);
      ys.push_back(kary_tree_size_distinct_leaves(k, d, m) / d);
    }
    const power_law_fit f = fit_power_law(ms, ys);
    EXPECT_GT(f.exponent, 0.68) << "k=" << k;
    EXPECT_LT(f.exponent, 0.92) << "k=" << k;
    EXPECT_GT(f.r_squared, 0.98) << "k=" << k;
  }
}

TEST(kary_asymptotic, eq18_composition_matches_direct_evaluation) {
  // kary_tree_size_distinct_approx must equal Eq 16 evaluated at the
  // asymptotic n(m).
  const double k = 2.0;
  const unsigned d = 12;
  const double m_sites = std::pow(2.0, 12.0);
  const double m = 300.0;
  const double n = -m_sites * std::log1p(-m / m_sites);
  const double expected =
      n * kary_tree_size_per_receiver_approx(k, n / m_sites);
  EXPECT_NEAR(kary_tree_size_distinct_approx(k, d, m), expected, 1e-9);
  EXPECT_DOUBLE_EQ(kary_tree_size_distinct_approx(k, d, 0.0), 0.0);
}

TEST(kary_asymptotic, continuous_k_toward_one) {
  // The paper varies k continuously toward 1 (footnote 5); the formulas
  // must remain finite for k in (1, 2).
  EXPECT_GT(kary_tree_size_per_receiver_approx(1.2, 0.5), 0.0);
  EXPECT_GT(kary_h_approx(1.1, 0.5), 0.0);
}

TEST(kary_asymptotic, validation) {
  EXPECT_THROW(kary_h_approx(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(kary_h_approx(2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(kary_tree_size_per_receiver_approx(2.0, 0.0), std::invalid_argument);
  EXPECT_THROW(kary_tree_size_approx(0.5, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(kary_tree_size_distinct_approx(2.0, 3, 8.0), std::invalid_argument);
  EXPECT_THROW(chuang_sirbu_curve(0.0), std::invalid_argument);
  EXPECT_THROW(chuang_sirbu_curve(1.0, 0.8, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
