// Session simulator: conservation laws, Little's-law sanity, determinism,
// and the aggregate-load-vs-scaling-law agreement it exists to demonstrate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "core/scaling_law.hpp"
#include "graph/metrics.hpp"
#include "multicast/unicast.hpp"
#include "session/simulator.hpp"
#include "topo/transit_stub.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

session_workload small_workload() {
  session_workload w;
  w.session_arrival_rate = 0.4;
  w.session_lifetime_mean = 15.0;
  w.member_join_rate = 1.5;
  w.member_lifetime_mean = 4.0;
  w.max_concurrent_sessions = 32;
  return w;
}

TEST(session, deterministic_given_seed) {
  waxman_params p;
  p.nodes = 80;
  const graph g = make_waxman(p, 2);
  const auto a = simulate_sessions(g, small_workload(), 200.0, 50.0, 9);
  const auto b = simulate_sessions(g, small_workload(), 200.0, 50.0, 9);
  EXPECT_DOUBLE_EQ(a.time_avg_links, b.time_avg_links);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.sessions_started, b.sessions_started);
}

TEST(session, basic_conservation) {
  waxman_params p;
  p.nodes = 80;
  const graph g = make_waxman(p, 2);
  const auto m = simulate_sessions(g, small_workload(), 300.0, 50.0, 5);
  EXPECT_GT(m.sessions_started, 5u);
  EXPECT_LE(m.sessions_completed, m.sessions_started + 1);
  EXPECT_GT(m.joins, 10u);
  // leaves counts both natural departures and session-end drains. It can
  // exceed joins (warmup members leaving inside the window) or lag them
  // (members alive at the horizon) — but only slightly in steady state.
  EXPECT_NEAR(static_cast<double>(m.leaves) / static_cast<double>(m.joins),
              1.0, 0.05);
  EXPECT_GT(m.time_avg_links, 0.0);
  EXPECT_GE(m.peak_links, m.time_avg_links);
  EXPECT_DOUBLE_EQ(m.duration, 300.0);
}

TEST(session, littles_law_for_sessions) {
  // E[active sessions] = arrival_rate * mean_lifetime (M/G/inf), within
  // Monte-Carlo tolerance, as long as the cap never binds.
  waxman_params p;
  p.nodes = 60;
  const graph g = make_waxman(p, 4);
  session_workload w = small_workload();
  w.session_arrival_rate = 0.3;
  w.session_lifetime_mean = 10.0;
  w.max_concurrent_sessions = 1000;
  const auto m = simulate_sessions(g, w, 3000.0, 200.0, 13);
  EXPECT_EQ(m.sessions_dropped, 0u);
  EXPECT_NEAR(m.time_avg_sessions, 3.0, 0.5);
  // Members per active session: the naive join_rate * member_lifetime = 6
  // is cut by session mortality — a session observed at a random time has
  // exponential age A (memoryless), and E[members] = lambda*mu*(1 -
  // E[e^{-A/mu}]) = lambda*mu * mu_rate/(mu_rate + end_rate)... with
  // end_rate = 1/10 and leave rate 1/4: 6 * (1 - (1/10)/(1/10 + 1/4)) = 4.29.
  EXPECT_NEAR(m.time_avg_members / m.time_avg_sessions, 4.29, 0.8);
}

TEST(session, capacity_cap_drops_arrivals) {
  waxman_params p;
  p.nodes = 60;
  const graph g = make_waxman(p, 4);
  session_workload w = small_workload();
  w.session_arrival_rate = 2.0;
  w.session_lifetime_mean = 50.0;
  w.max_concurrent_sessions = 2;
  const auto m = simulate_sessions(g, w, 400.0, 50.0, 3);
  EXPECT_GT(m.sessions_dropped, 0u);
  EXPECT_LE(m.time_avg_sessions, 2.0 + 1e-9);
}

TEST(session, aggregate_load_matches_scaling_law_prediction) {
  // The provisioning calculation: fit the law offline, then predict
  // aggregate links as E[#sessions] * L(mean group size). Agreement within
  // ~20% (the law is a power-law fit and group sizes fluctuate).
  const graph g = make_transit_stub(ts1000_params(), 6);
  monte_carlo_params mc;
  mc.receiver_sets = 12;
  mc.sources = 10;
  const auto rows =
      measure_distinct_receivers(g, default_group_grid(g.node_count() - 1, 12), mc);
  const scaling_law law = scaling_law::fit_to(rows, 2.0, 500.0);
  // Network-wide mean path length == E over random sources of that
  // source's mean unicast path (a single source's ubar would bias the
  // prediction by that node's centrality).
  const double ubar = average_path_length_exact(g);

  session_workload w;
  w.session_arrival_rate = 0.25;
  w.session_lifetime_mean = 40.0;
  w.member_join_rate = 1.0;
  w.member_lifetime_mean = 12.0;  // mean group ~12 members
  w.max_concurrent_sessions = 512;
  const auto m = simulate_sessions(g, w, 2000.0, 300.0, 21);

  ASSERT_GT(m.mean_group_size_at_join, 2.0);
  const double predicted_per_session =
      law.tree_size(m.mean_group_size_at_join, ubar);
  const double predicted_aggregate = m.time_avg_sessions * predicted_per_session;
  EXPECT_NEAR(m.time_avg_links / predicted_aggregate, 1.0, 0.2);
}

TEST(session, validation) {
  waxman_params p;
  p.nodes = 40;
  const graph g = make_waxman(p, 1);
  session_workload w = small_workload();
  EXPECT_THROW(simulate_sessions(g, w, 0.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(simulate_sessions(g, w, 10.0, -1.0, 1), std::invalid_argument);
  w.member_join_rate = 0.0;
  EXPECT_THROW(simulate_sessions(g, w, 10.0, 0.0, 1), std::invalid_argument);
  w = small_workload();
  w.session_arrival_rate = 0.0;
  EXPECT_THROW(simulate_sessions(g, w, 10.0, 0.0, 1), std::invalid_argument);
  w = small_workload();
  w.session_lifetime_mean = -2.0;
  EXPECT_THROW(simulate_sessions(g, w, 10.0, 0.0, 1), std::invalid_argument);
  w = small_workload();
  w.member_lifetime_mean = 0.0;
  EXPECT_THROW(simulate_sessions(g, w, 10.0, 0.0, 1), std::invalid_argument);
  w = small_workload();
  w.max_concurrent_sessions = 0;
  EXPECT_THROW(simulate_sessions(g, w, 10.0, 0.0, 1), std::invalid_argument);

  // A single node has no possible receiver sites.
  EXPECT_THROW(simulate_sessions(graph_builder(1).build(), small_workload(),
                                 10.0, 0.0, 1),
               std::invalid_argument);

  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_THROW(simulate_sessions(b.build(), small_workload(), 10.0, 0.0, 1),
               std::invalid_argument);
}

// Two triangles joined by the bridge 2-3; failing the bridge partitions
// whichever side a session's source is not on.
graph barbell() {
  graph_builder b(6);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  b.add_edge(3, 5);
  b.add_edge(4, 5);
  b.add_edge(2, 3);
  return b.build();
}

TEST(session_faults, fault_event_validation) {
  const graph g = barbell();
  const session_workload w = small_workload();
  std::vector<link_event> bad_time{{-1.0, {2, 3}, true}};
  EXPECT_THROW(simulate_sessions(g, w, bad_time, 10.0, 0.0, 1),
               std::invalid_argument);
  std::vector<link_event> bad_node{{5.0, {0, 99}, true}};
  EXPECT_THROW(simulate_sessions(g, w, bad_node, 10.0, 0.0, 1),
               std::out_of_range);
  std::vector<link_event> no_such_link{{5.0, {0, 3}, true}};
  EXPECT_THROW(simulate_sessions(g, w, no_such_link, 10.0, 0.0, 1),
               std::invalid_argument);
}

TEST(session_faults, ineffective_trace_matches_pristine_run) {
  // The trace consumes no randomness, so a trace with no effective
  // transition (recoveries for links that never failed, events past the
  // horizon) must reproduce the pristine run bit for bit.
  const graph g = barbell();
  const session_workload w = small_workload();
  const auto pristine = simulate_sessions(g, w, 120.0, 20.0, 17);
  std::vector<link_event> noop{{5.0, {2, 3}, false},   // recovery of an up link
                               {900.0, {2, 3}, true}};  // beyond the horizon
  const auto traced = simulate_sessions(g, w, noop, 120.0, 20.0, 17);
  EXPECT_DOUBLE_EQ(traced.time_avg_links, pristine.time_avg_links);
  EXPECT_EQ(traced.joins, pristine.joins);
  EXPECT_EQ(traced.leaves, pristine.leaves);
  EXPECT_EQ(traced.sessions_started, pristine.sessions_started);
  EXPECT_EQ(traced.link_failures, 0u);
  EXPECT_EQ(traced.link_recoveries, 0u);
  EXPECT_EQ(traced.repairs, 0u);
  EXPECT_EQ(traced.receivers_disconnected, 0u);
  EXPECT_DOUBLE_EQ(traced.time_avg_reachable_fraction, 1.0);
}

TEST(session_faults, bridge_failure_degrades_then_recovery_restores) {
  const graph g = barbell();
  session_workload w;
  w.session_arrival_rate = 0.5;
  w.session_lifetime_mean = 40.0;
  w.member_join_rate = 2.0;
  w.member_lifetime_mean = 15.0;
  w.max_concurrent_sessions = 64;

  // Run A: the bridge fails mid-window and never comes back.
  std::vector<link_event> fail_only{{60.0, {2, 3}, true}};
  const auto a = simulate_sessions(g, w, fail_only, 160.0, 20.0, 23);
  EXPECT_EQ(a.link_failures, 1u);
  EXPECT_EQ(a.link_recoveries, 0u);
  EXPECT_GT(a.repairs, 0u);
  EXPECT_GT(a.repair_links_churned, 0u);
  EXPECT_GT(a.receivers_disconnected, 0u);
  EXPECT_LT(a.time_avg_reachable_fraction, 1.0);
  EXPECT_GT(a.time_avg_reachable_fraction, 0.0);

  // Run B: same seed, same failure, but the bridge recovers. The workload
  // trajectory is identical (the trace draws no randomness), so the only
  // difference is the repair that re-attaches partitioned receivers.
  std::vector<link_event> fail_recover{{60.0, {2, 3}, true},
                                       {100.0, {2, 3}, false}};
  const auto b = simulate_sessions(g, w, fail_recover, 160.0, 20.0, 23);
  EXPECT_EQ(b.link_failures, 1u);
  EXPECT_EQ(b.link_recoveries, 1u);
  EXPECT_GT(b.receivers_reconnected, 0u);
  EXPECT_GT(b.time_avg_reachable_fraction, a.time_avg_reachable_fraction);
}

TEST(session_faults, deterministic_under_failures) {
  const graph g = barbell();
  const session_workload w = small_workload();
  std::vector<link_event> trace{{30.0, {2, 3}, true},
                                {70.0, {2, 3}, false},
                                {90.0, {0, 1}, true}};
  const auto a = simulate_sessions(g, w, trace, 150.0, 25.0, 31);
  const auto b = simulate_sessions(g, w, trace, 150.0, 25.0, 31);
  EXPECT_DOUBLE_EQ(a.time_avg_links, b.time_avg_links);
  EXPECT_DOUBLE_EQ(a.time_avg_reachable_fraction, b.time_avg_reachable_fraction);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.repair_links_churned, b.repair_links_churned);
  EXPECT_EQ(a.receivers_disconnected, b.receivers_disconnected);
  EXPECT_EQ(a.receivers_reconnected, b.receivers_reconnected);
}

}  // namespace
}  // namespace mcast
