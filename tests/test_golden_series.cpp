// Golden-file regression tests for the closed-form k-ary curves behind
// Figures 2, 3 and 4. The analytic layer (analysis/kary_exact.hpp,
// analysis/kary_asymptotic.hpp) is pure math — any change to its output is
// either a bug or a deliberate re-derivation, and both must be loud. Each
// curve is evaluated on a fixed grid and compared against a checked-in
// golden file within 1e-12 relative tolerance.
//
// Regenerating (after a *deliberate* formula change):
//   MCAST_REGEN_GOLDEN=1 ./test_golden_series
// rewrites the files under tests/data/, then rerun the test without the
// variable and commit the diff alongside the justification.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/kary_asymptotic.hpp"
#include "analysis/kary_exact.hpp"
#include "analysis/series.hpp"

namespace mcast {
namespace {

#ifndef MCAST_TEST_DATA_DIR
#error "MCAST_TEST_DATA_DIR must be defined by the build"
#endif

std::string data_path(const std::string& file) {
  return std::string(MCAST_TEST_DATA_DIR) + "/" + file;
}

// One golden curve: an x-grid and the function values along it.
struct golden_series {
  std::vector<double> x;
  std::vector<double> y;
};

// Serialization: one "x y" pair per line, both printed with %.17g so a
// round-trip through text is exact for IEEE doubles. '#' lines are comments.
void write_golden(const std::string& path, const golden_series& s,
                  const std::string& what) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << "# " << what << "\n";
  char buf[80];
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.17g %.17g\n", s.x[i], s.y[i]);
    out << buf;
  }
}

golden_series read_golden(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with MCAST_REGEN_GOLDEN=1)";
  golden_series s;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    double x = 0.0, y = 0.0;
    row >> x >> y;
    s.x.push_back(x);
    s.y.push_back(y);
  }
  return s;
}

bool regen() { return std::getenv("MCAST_REGEN_GOLDEN") != nullptr; }

// Evaluates `fn` along `grid`, then either rewrites the golden file
// (MCAST_REGEN_GOLDEN=1) or compares against it within 1e-12 relative.
void check_curve(const std::string& file, const std::string& what,
                 const std::vector<double>& grid,
                 const std::function<double(double)>& fn) {
  golden_series fresh;
  fresh.x = grid;
  for (double x : grid) fresh.y.push_back(fn(x));
  if (regen()) {
    write_golden(data_path(file), fresh, what);
    return;
  }
  const golden_series golden = read_golden(data_path(file));
  ASSERT_EQ(golden.x.size(), fresh.x.size()) << file;
  for (std::size_t i = 0; i < fresh.x.size(); ++i) {
    // The grid itself must match exactly (it round-trips via %.17g).
    ASSERT_EQ(golden.x[i], fresh.x[i]) << file << " row " << i;
    const double want = golden.y[i];
    const double got = fresh.y[i];
    const double scale = std::max(std::abs(want), std::abs(got));
    const double tol = scale == 0.0 ? 1e-12 : 1e-12 * scale;
    EXPECT_NEAR(got, want, tol) << file << " row " << i << " (x=" << fresh.x[i]
                                << ")";
  }
}

// --- Figure 2: h(x), exact (Eq 11) vs asymptote (Eq 12) ---

TEST(golden_series, fig2_h_exact) {
  const auto grid = log_grid(1e-4, 10.0, 40);
  for (unsigned k : {2u, 4u, 10u}) {
    check_curve("fig2_h_exact_k" + std::to_string(k) + ".txt",
                "Eq 11: h(x) exact, k=" + std::to_string(k) + ", D=15",
                grid, [k](double x) { return kary_h_exact(k, 15, x); });
  }
}

TEST(golden_series, fig2_h_approx) {
  const auto grid = log_grid(1e-4, 10.0, 40);
  for (unsigned k : {2u, 4u, 10u}) {
    check_curve("fig2_h_approx_k" + std::to_string(k) + ".txt",
                "Eq 12: h(x) ~ x k^{-1/2}, k=" + std::to_string(k),
                grid, [k](double x) {
                  return kary_h_approx(static_cast<double>(k), x);
                });
  }
}

// --- Figure 3: L̂(n) and its differences, exact vs Eq 14 ---

TEST(golden_series, fig3_tree_size_and_differences) {
  const auto grid = log_grid(1.0, 1e6, 48);
  check_curve("fig3_Lhat_k2_d15.txt", "Eq 4: L-hat(n), k=2, D=15", grid,
              [](double n) { return kary_tree_size_leaves(2, 15, n); });
  check_curve("fig3_dLhat_k2_d15.txt", "Eq 5: delta L-hat(n), k=2, D=15", grid,
              [](double n) { return kary_tree_size_delta_leaves(2, 15, n); });
  check_curve("fig3_d2Lhat_k2_d15.txt", "Eq 6: delta^2 L-hat(n), k=2, D=15",
              grid,
              [](double n) { return kary_tree_size_delta2_leaves(2, 15, n); });
  check_curve("fig3_Lhat_approx_k2_d15.txt", "Eq 14: approx L-hat(n), k=2, D=15",
              grid, [](double n) { return kary_tree_size_approx(2.0, 15, n); });
}

// --- Figure 4: L(m) for distinct receivers vs the m^0.8 reference ---

TEST(golden_series, fig4_distinct_receivers) {
  // m stays below M = 2^15 (the exact mapping requires m < M).
  const auto grid = log_grid(1.0, 3e4, 48);
  check_curve("fig4_L_distinct_k2_d15.txt",
              "Eq 4 + Eq 1 mapping: L(m), k=2, D=15", grid,
              [](double m) { return kary_tree_size_distinct_leaves(2, 15, m); });
  check_curve("fig4_L_distinct_approx_k2_d15.txt",
              "Eq 18: approx L(m), k=2, D=15", grid, [](double m) {
                return kary_tree_size_distinct_approx(2.0, 15, m);
              });
  check_curve("fig4_chuang_sirbu_m08.txt", "reference curve m^0.8", grid,
              [](double m) { return chuang_sirbu_curve(m); });
}

// A meta-check: the golden layer itself must catch drift. Perturb one value
// by 1e-9 relative and confirm the comparison would flag it.
TEST(golden_series, tolerance_actually_bites) {
  if (regen()) GTEST_SKIP();
  const golden_series s = read_golden(data_path("fig3_Lhat_k2_d15.txt"));
  ASSERT_FALSE(s.y.empty());
  const double want = s.y.back();
  const double drifted = want * (1.0 + 1e-9);
  const double tol = 1e-12 * std::max(std::abs(want), std::abs(drifted));
  EXPECT_GT(std::abs(drifted - want), tol);
}

}  // namespace
}  // namespace mcast
