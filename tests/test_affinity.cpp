// Affinity model (Section 5): distance oracles, extreme-β closed forms vs
// greedy construction, Metropolis chain behaviour across β.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/stats.hpp"
#include "multicast/affinity.hpp"
#include "multicast/receivers.hpp"
#include "topo/kary.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(distance_oracle, kary_matches_graph) {
  const kary_shape shape(2, 4);
  const graph g = shape.to_graph();
  const kary_distance_oracle fast(shape);
  const graph_distance_oracle slow(g);
  for (node_id a = 0; a < g.node_count(); a += 3) {
    for (node_id b = 0; b < g.node_count(); b += 5) {
      EXPECT_EQ(fast.distance(a, b), slow.distance(a, b));
    }
  }
}

TEST(distance_oracle, graph_oracle_errors) {
  const graph g = make_path(3);
  const graph_distance_oracle o(g);
  EXPECT_THROW(o.distance(0, 5), std::out_of_range);
}

TEST(extreme_closed_forms, disaffinity_matches_paper_sequence) {
  // Eq 33 area: ΔL(j) = D - i for j (receivers already placed) in
  // [k^i, k^{i+1}), with ΔL(0) = D. Here delta = L(m) - L(m-1) = ΔL(m-1).
  const unsigned k = 2, d = 5;
  std::uint64_t prev = 0;
  for (std::uint64_t m = 1; m <= 32; ++m) {
    const std::uint64_t lm = extreme_disaffinity_kary_tree_size(k, d, m);
    const std::uint64_t delta = lm - prev;
    const std::uint64_t j = m - 1;
    std::uint64_t level = 0;
    while (j > 0 && (1ULL << (level + 1)) <= j) ++level;
    EXPECT_EQ(delta, d - level) << "m=" << m;
    prev = lm;
  }
}

TEST(extreme_closed_forms, disaffinity_anchor_values) {
  // L(1)=D, L(k)=kD, L(k^2)=kD + k(k-1)(D-1) (Section 5.2).
  for (unsigned k : {2u, 3u, 4u}) {
    const unsigned d = 6;
    EXPECT_EQ(extreme_disaffinity_kary_tree_size(k, d, 1), d);
    EXPECT_EQ(extreme_disaffinity_kary_tree_size(k, d, k), k * d);
    EXPECT_EQ(extreme_disaffinity_kary_tree_size(k, d, k * k),
              k * d + k * (k - 1) * (d - 1));
  }
}

TEST(extreme_closed_forms, affinity_matches_paper_sequence) {
  // Section 5.3 binary sequence: ΔL = D,1,2,1,3,1,2,1,...
  const unsigned d = 6;
  const std::uint64_t expected_delta[] = {6, 1, 2, 1, 3, 1, 2, 1};
  std::uint64_t prev = 0;
  for (std::uint64_t m = 1; m <= 8; ++m) {
    const std::uint64_t lm = extreme_affinity_kary_tree_size(2, d, m);
    EXPECT_EQ(lm - prev, expected_delta[m - 1]) << "m=" << m;
    prev = lm;
  }
}

TEST(extreme_closed_forms, affinity_anchor_values) {
  // L(k^l) = (D - l) + (k^{l+1} - k)/(k - 1): root path + full subtree.
  for (unsigned k : {2u, 3u}) {
    const unsigned d = 5;
    for (unsigned l = 0; l <= 3; ++l) {
      std::uint64_t kl = 1;
      for (unsigned i = 0; i < l; ++i) kl *= k;
      const std::uint64_t subtree = (kl * k - k) / (k - 1);
      EXPECT_EQ(extreme_affinity_kary_tree_size(k, d, kl), (d - l) + subtree)
          << "k=" << k << " l=" << l;
    }
  }
}

TEST(extreme_closed_forms, extremes_bound_each_other) {
  for (std::uint64_t m = 1; m <= 64; ++m) {
    EXPECT_LE(extreme_affinity_kary_tree_size(2, 6, m),
              extreme_disaffinity_kary_tree_size(2, 6, m));
  }
}

TEST(extreme_closed_forms, domain_errors) {
  EXPECT_THROW(extreme_affinity_kary_tree_size(1, 3, 1), std::invalid_argument);
  EXPECT_THROW(extreme_affinity_kary_tree_size(2, 3, 0), std::invalid_argument);
  EXPECT_THROW(extreme_affinity_kary_tree_size(2, 3, 9), std::invalid_argument);
  EXPECT_THROW(extreme_disaffinity_kary_tree_size(2, 3, 9), std::invalid_argument);
}

TEST(greedy, trajectories_match_closed_forms_on_kary_leaves) {
  const kary_shape shape(2, 4);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> leaves =
      leaf_sites(shape.first_leaf(), shape.leaf_count());
  rng gen(11);
  const auto spread = greedy_disaffinity_trajectory(tree, leaves, 16, gen);
  const auto packed = greedy_affinity_trajectory(tree, leaves, 16, gen);
  ASSERT_EQ(spread.size(), 16u);
  for (std::uint64_t m = 1; m <= 16; ++m) {
    EXPECT_EQ(spread[m - 1], extreme_disaffinity_kary_tree_size(2, 4, m))
        << "greedy disaffinity diverges at m=" << m;
    EXPECT_EQ(packed[m - 1], extreme_affinity_kary_tree_size(2, 4, m))
        << "greedy affinity diverges at m=" << m;
  }
}

TEST(metropolis, beta_zero_matches_uniform_sampling) {
  const kary_shape shape(2, 6);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  const kary_distance_oracle oracle(shape);

  // Uniform (direct) estimate of E[L] for n=20 with replacement.
  rng gen(21);
  running_stats direct;
  delivery_tree_builder builder(tree);
  for (int rep = 0; rep < 400; ++rep) {
    builder.reset();
    for (node_id v : sample_with_replacement(universe, 20, gen)) {
      builder.add_receiver(v);
    }
    direct.add(static_cast<double>(builder.link_count()));
  }

  affinity_chain_params params;
  params.beta = 0.0;
  params.burn_in_sweeps = 4;
  params.sample_sweeps = 30;
  params.measurements = 60;
  running_stats chain;
  for (int rep = 0; rep < 10; ++rep) {
    rng local(100 + rep);
    chain.add(sample_affinity_tree_size(tree, universe, 20, oracle, params, local)
                  .mean_tree_size);
  }
  EXPECT_NEAR(chain.mean(), direct.mean(), 0.05 * direct.mean());
}

TEST(metropolis, beta_zero_accepts_everything) {
  const kary_shape shape(2, 4);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const kary_distance_oracle oracle(shape);
  affinity_chain_params params;
  params.beta = 0.0;
  rng gen(5);
  const auto est = sample_affinity_tree_size(tree, all_sites_except(g, 0), 10,
                                             oracle, params, gen);
  EXPECT_DOUBLE_EQ(est.acceptance_rate, 1.0);
}

TEST(metropolis, affinity_shrinks_and_disaffinity_grows_tree) {
  const kary_shape shape(2, 7);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  const kary_distance_oracle oracle(shape);

  auto run = [&](double beta) {
    affinity_chain_params params;
    params.beta = beta;
    params.burn_in_sweeps = 30;
    params.sample_sweeps = 10;
    rng gen(31);
    return sample_affinity_tree_size(tree, universe, 24, oracle, params, gen);
  };
  const auto clustered = run(10.0);
  const auto uniform = run(0.0);
  const auto spread = run(-10.0);
  EXPECT_LT(clustered.mean_tree_size, uniform.mean_tree_size);
  EXPECT_GT(spread.mean_tree_size, uniform.mean_tree_size);
  EXPECT_LT(clustered.mean_pair_distance, uniform.mean_pair_distance);
  EXPECT_GT(spread.mean_pair_distance, uniform.mean_pair_distance);
}

TEST(metropolis, single_receiver_degenerates_gracefully) {
  const kary_shape shape(2, 4);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const kary_distance_oracle oracle(shape);
  affinity_chain_params params;
  params.beta = 5.0;  // irrelevant with no pairs
  rng gen(1);
  const auto est = sample_affinity_tree_size(tree, all_sites_except(g, 0), 1,
                                             oracle, params, gen);
  EXPECT_GT(est.mean_tree_size, 0.0);
  EXPECT_LE(est.mean_tree_size, 4.0);
  EXPECT_DOUBLE_EQ(est.mean_pair_distance, 0.0);
}

TEST(metropolis, parameter_validation) {
  const kary_shape shape(2, 3);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const kary_distance_oracle oracle(shape);
  affinity_chain_params params;
  rng gen(1);
  EXPECT_THROW(
      sample_affinity_tree_size(tree, all_sites_except(g, 0), 0, oracle, params, gen),
      std::invalid_argument);
  EXPECT_THROW(sample_affinity_tree_size(tree, {}, 3, oracle, params, gen),
               std::invalid_argument);
  params.measurements = 0;
  EXPECT_THROW(
      sample_affinity_tree_size(tree, all_sites_except(g, 0), 3, oracle, params, gen),
      std::invalid_argument);
}

}  // namespace
}  // namespace mcast
