// query_service::handle() unit contracts — no sockets involved:
//   * a corpus of malformed/hostile lines each gets the right typed error
//     (and never an exception: handle() is noexcept);
//   * per-request limits surface as limit_exceeded;
//   * deterministic ops are byte-identical across service instances,
//     repeated calls, and Monte-Carlo thread counts;
//   * response framing is single-line JSON with the id echoed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"

namespace mcast::service {
namespace {

std::string error_code_of(const std::string& response) {
  const json::value doc = json::parse(response);
  const json::value* ok = doc.get("ok");
  if (ok == nullptr || !ok->is(json::value::kind::boolean)) return "<no ok>";
  if (ok->as_bool()) return "<ok>";
  const json::value* err = doc.get("error");
  if (err == nullptr) return "<no error>";
  const json::value* code = err->get("code");
  return code == nullptr ? "<no code>" : code->as_string();
}

bool is_ok(const std::string& response) {
  return error_code_of(response) == "<ok>";
}

TEST(service_protocol, malformed_corpus_gets_typed_errors) {
  query_service svc;
  const struct {
    const char* line;
    const char* expected_code;
  } corpus[] = {
      {"", "parse_error"},
      {"   ", "parse_error"},
      {"not json at all", "parse_error"},
      {"{\"op\":\"lmhat\"", "parse_error"},
      {"\"just a string\"", "parse_error"},
      {"42", "parse_error"},
      {"[1,2,3]", "parse_error"},
      {"null", "parse_error"},
      {"{}", "bad_request"},                           // missing op
      {"{\"op\":42}", "bad_request"},                  // op not a string
      {"{\"op\":\"frobnicate\"}", "unknown_op"},
      {"{\"op\":\"lmhat\"}", "bad_request"},           // missing k/depth
      {"{\"op\":\"lmhat\",\"k\":4,\"depth\":5,\"n\":1,\"bogus\":1}",
       "bad_request"},                                 // unknown field
      {"{\"op\":\"lmhat\",\"k\":1,\"depth\":5,\"n\":1}", "bad_request"},
      {"{\"op\":\"lmhat\",\"k\":4,\"depth\":0,\"n\":1}", "bad_request"},
      {"{\"op\":\"lmhat\",\"k\":4,\"depth\":5,\"n\":-1}", "bad_request"},
      {"{\"op\":\"lmhat\",\"k\":4,\"depth\":5,\"n\":[]}", "bad_request"},
      {"{\"op\":\"lmhat\",\"k\":4,\"depth\":5,\"n\":\"ten\"}", "bad_request"},
      {"{\"op\":\"lmhat\",\"k\":4.5,\"depth\":5,\"n\":1}", "bad_request"},
      {"{\"op\":\"lmhat\",\"k\":4,\"depth\":5,\"n\":1,\"id\":[1]}",
       "bad_request"},                                 // id must be scalar
      {"{\"op\":\"lm_estimate\"}", "bad_request"},     // missing topology
      {"{\"op\":\"lm_estimate\",\"topology\":\"atlantis\"}", "bad_request"},
      {"{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"budget\":32}",
       "bad_request"},                                 // 0 < budget < 64
      {"{\"op\":\"lm_estimate\",\"topology\":\"ARPA\","
       "\"group_sizes\":[99999]}",
       "bad_request"},                                 // m > sites
      {"{\"op\":\"lm_estimate\",\"topology\":\"ARPA\","
       "\"group_sizes\":[2],\"grid_points\":4}",
       "bad_request"},                                 // mutually exclusive
      {"{\"op\":\"reachability\"}", "bad_request"},
      {"{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":99999}",
       "bad_request"},
      {"{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":1,"
       "\"sources\":2}",
       "bad_request"},                                 // mutually exclusive
      {"{\"op\":\"metrics\",\"surprise\":1}", "bad_request"},
      {"{\"op\":\"healthz\",\"surprise\":1}", "bad_request"},
  };
  for (const auto& c : corpus) {
    const std::string response = svc.handle(c.line);
    EXPECT_EQ(error_code_of(response), c.expected_code)
        << "line: " << c.line << "\nresponse: " << response;
    EXPECT_EQ(response.find('\n'), std::string::npos)
        << "responses must be single-line";
  }
}

TEST(service_protocol, limits_surface_as_limit_exceeded) {
  query_service svc;
  const service_limits& lim = svc.limits();

  std::string big_n = "{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[";
  for (std::size_t i = 0; i <= lim.max_points; ++i) {
    if (i > 0) big_n += ',';
    big_n += '1';
  }
  big_n += "]}";
  EXPECT_EQ(error_code_of(svc.handle(big_n)), "limit_exceeded");

  EXPECT_EQ(error_code_of(svc.handle(
                "{\"op\":\"lmhat\",\"k\":1000,\"depth\":3,\"n\":1}")),
            "limit_exceeded");
  EXPECT_EQ(error_code_of(svc.handle(
                "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\","
                "\"sources\":1000000}")),
            "limit_exceeded");
  EXPECT_EQ(error_code_of(svc.handle(
                "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\","
                "\"threads\":64}")),
            "limit_exceeded");
  EXPECT_EQ(error_code_of(svc.handle(
                "{\"op\":\"reachability\",\"topology\":\"ARPA\","
                "\"budget\":999999999}")),
            "limit_exceeded");
}

TEST(service_protocol, lmhat_is_deterministic_across_instances) {
  const std::string req =
      "{\"op\":\"lmhat\",\"k\":4,\"depth\":5,\"n\":[1,10,100,1000]}";
  query_service a, b;
  const std::string r1 = a.handle(req);
  EXPECT_TRUE(is_ok(r1)) << r1;
  EXPECT_EQ(r1, a.handle(req));
  EXPECT_EQ(r1, b.handle(req));
}

TEST(service_protocol, lm_estimate_byte_identical_across_thread_counts) {
  const std::string base =
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":"
      "[2,4,8,16],\"sources\":6,\"receiver_sets\":4,\"seed\":99";
  query_service svc;
  const std::string serial = svc.handle(base + ",\"threads\":1}");
  const std::string threaded = svc.handle(base + ",\"threads\":4}");
  EXPECT_TRUE(is_ok(serial)) << serial;
  EXPECT_EQ(serial, threaded)
      << "Monte-Carlo thread count leaked into the response bytes";
}

TEST(service_protocol, lm_estimate_includes_fit_and_respects_model) {
  query_service svc;
  const std::string distinct = svc.handle(
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\","
      "\"group_sizes\":[2,4,8,16,32],\"sources\":6,\"receiver_sets\":4}");
  ASSERT_TRUE(is_ok(distinct)) << distinct;
  const json::value doc = json::parse(distinct);
  const json::value* result = doc.get("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->get("fit"), nullptr) << distinct;
  EXPECT_GT(result->get("fit")->get("exponent")->as_number(), 0.0);
  ASSERT_NE(result->get("rows"), nullptr);
  EXPECT_EQ(result->get("rows")->items().size(), 5u);

  const std::string replacement = svc.handle(
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"model\":"
      "\"replacement\",\"group_sizes\":[2,4,8],\"sources\":4,"
      "\"receiver_sets\":4}");
  EXPECT_TRUE(is_ok(replacement)) << replacement;
  EXPECT_NE(distinct, replacement);
}

TEST(service_protocol, reachability_single_source_matches_repeat) {
  query_service svc;
  const std::string req =
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":3}";
  const std::string r1 = svc.handle(req);
  ASSERT_TRUE(is_ok(r1)) << r1;
  EXPECT_EQ(r1, svc.handle(req));
  const json::value doc = json::parse(r1);
  const json::value* result = doc.get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->get("total_sites")->as_number(), 0.0);
  EXPECT_EQ(result->get("s")->items().size(),
            result->get("t")->items().size());
}

TEST(service_protocol, id_is_echoed_verbatim) {
  query_service svc;
  const std::string with_string_id = svc.handle(
      "{\"op\":\"healthz\",\"id\":\"req-17\"}");
  EXPECT_NE(with_string_id.find("\"id\":\"req-17\""), std::string::npos)
      << with_string_id;
  const std::string with_number_id =
      svc.handle("{\"op\":\"frobnicate\",\"id\":7}");
  EXPECT_NE(with_number_id.find("\"id\":7"), std::string::npos)
      << with_number_id;
}

TEST(service_protocol, metrics_and_healthz_report_without_stats_source) {
  query_service svc;
  const std::string health = svc.handle("{\"op\":\"healthz\"}");
  ASSERT_TRUE(is_ok(health)) << health;
  const json::value doc = json::parse(health);
  EXPECT_EQ(doc.get("result")->get("status")->as_string(), "ok");
  EXPECT_EQ(doc.get("result")->get("accepted")->as_number(), 0.0);

  const std::string metrics = svc.handle("{\"op\":\"metrics\"}");
  ASSERT_TRUE(is_ok(metrics)) << metrics;
  EXPECT_NE(metrics.find("\"server\""), std::string::npos);
  EXPECT_NE(metrics.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace mcast::service
