// Waxman generator: determinism, parameter effects, connectivity repair.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/components.hpp"
#include "topo/waxman.hpp"

namespace mcast {
namespace {

TEST(waxman, deterministic_given_seed) {
  waxman_params p;
  p.nodes = 80;
  const graph a = make_waxman(p, 11);
  const graph b = make_waxman(p, 11);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(waxman, different_seeds_differ) {
  waxman_params p;
  p.nodes = 80;
  const graph a = make_waxman(p, 11);
  const graph b = make_waxman(p, 12);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(waxman, connected_when_requested) {
  waxman_params p;
  p.nodes = 120;
  p.alpha = 0.05;  // sparse enough to fragment without repair
  p.beta = 0.05;
  p.ensure_connected = true;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(is_connected(make_waxman(p, seed))) << "seed " << seed;
  }
}

TEST(waxman, repair_can_be_disabled) {
  waxman_params p;
  p.nodes = 200;
  p.alpha = 0.01;
  p.beta = 0.02;
  p.ensure_connected = false;
  bool saw_disconnected = false;
  for (std::uint64_t seed = 0; seed < 5 && !saw_disconnected; ++seed) {
    saw_disconnected = !is_connected(make_waxman(p, seed));
  }
  EXPECT_TRUE(saw_disconnected)
      << "ultra-sparse Waxman should fragment without repair";
}

TEST(waxman, alpha_increases_density) {
  waxman_params sparse, dense;
  sparse.nodes = dense.nodes = 100;
  sparse.alpha = 0.1;
  dense.alpha = 0.8;
  const graph gs = make_waxman(sparse, 3);
  const graph gd = make_waxman(dense, 3);
  EXPECT_GT(gd.edge_count(), gs.edge_count() * 2);
}

TEST(waxman, node_count_respected) {
  waxman_params p;
  p.nodes = 57;
  EXPECT_EQ(make_waxman(p, 1).node_count(), 57u);
}

TEST(waxman, single_node) {
  waxman_params p;
  p.nodes = 1;
  const graph g = make_waxman(p, 1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(waxman, invalid_parameters_throw) {
  waxman_params p;
  p.nodes = 0;
  EXPECT_THROW(make_waxman(p, 1), std::invalid_argument);
  p.nodes = 10;
  p.alpha = 0.0;
  EXPECT_THROW(make_waxman(p, 1), std::invalid_argument);
  p.alpha = 1.5;
  EXPECT_THROW(make_waxman(p, 1), std::invalid_argument);
  p.alpha = 0.5;
  p.beta = -0.1;
  EXPECT_THROW(make_waxman(p, 1), std::invalid_argument);
  p.beta = 0.5;
  p.plane_size = 0.0;
  EXPECT_THROW(make_waxman(p, 1), std::invalid_argument);
}

TEST(waxman, name_reflects_size) {
  waxman_params p;
  p.nodes = 42;
  EXPECT_EQ(make_waxman(p, 1).name(), "waxman42");
}

}  // namespace
}  // namespace mcast
