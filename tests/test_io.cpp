// Edge-list / DOT serialization: round-trips, comments, malformed input.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graph/io.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

TEST(io, parse_basic) {
  const graph g = read_edge_list_string("3\n0 1\n1 2\n", "tri");
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.name(), "tri");
}

TEST(io, parse_skips_comments_and_blank_lines) {
  const graph g = read_edge_list_string(
      "# header comment\n\n4\n# edges below\n0 1\n\n  # indented comment\n2 3\n");
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(io, parse_cleans_duplicates_and_loops) {
  const graph g = read_edge_list_string("3\n0 1\n1 0\n2 2\n");
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(io, parse_zero_nodes) {
  const graph g = read_edge_list_string("0\n");
  EXPECT_TRUE(g.empty());
}

TEST(io, malformed_inputs_throw) {
  EXPECT_THROW(read_edge_list_string(""), std::invalid_argument);
  EXPECT_THROW(read_edge_list_string("# only comments\n"), std::invalid_argument);
  EXPECT_THROW(read_edge_list_string("abc\n"), std::invalid_argument);
  EXPECT_THROW(read_edge_list_string("-3\n"), std::invalid_argument);
  EXPECT_THROW(read_edge_list_string("3\n0\n"), std::invalid_argument);
  EXPECT_THROW(read_edge_list_string("3\n0 7\n"), std::invalid_argument);
  EXPECT_THROW(read_edge_list_string("3\n0 x\n"), std::invalid_argument);
}

TEST(io, parse_errors_carry_line_numbers) {
  // The bad edge sits on (1-based) line 4: comment, header, edge, bad edge.
  try {
    read_edge_list_string("# map\n3\n0 1\n0 x\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
  try {
    read_edge_list_string("3\n0 1\n0 7\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(io, rejects_trailing_garbage) {
  // Inline junk after the two endpoints must not be silently dropped.
  EXPECT_THROW(read_edge_list_string("3\n0 1 junk\n"), std::invalid_argument);
  EXPECT_THROW(read_edge_list_string("3\n0 1 2\n"), std::invalid_argument);
  // Same for the node-count header.
  EXPECT_THROW(read_edge_list_string("3 nodes\n0 1\n"), std::invalid_argument);
  // Plain trailing whitespace stays fine.
  EXPECT_EQ(read_edge_list_string("3 \n0 1 \n").edge_count(), 1u);
}

TEST(io, missing_file_throws_runtime_error) {
  EXPECT_THROW(load_edge_list("/nonexistent/path/nope.txt"), std::runtime_error);
}

TEST(io, round_trip_preserves_structure) {
  const graph original = make_grid(4, 4);
  std::ostringstream out;
  write_edge_list(out, original);
  const graph parsed = read_edge_list_string(out.str());
  EXPECT_EQ(parsed.node_count(), original.node_count());
  EXPECT_EQ(parsed.edge_count(), original.edge_count());
  EXPECT_EQ(parsed.edges(), original.edges());
}

TEST(io, write_includes_name_as_comment) {
  graph g = make_path(2);
  g.set_name("pair");
  std::ostringstream out;
  write_edge_list(out, g);
  EXPECT_NE(out.str().find("# pair"), std::string::npos);
}

TEST(io, dot_output_shape) {
  graph g = make_path(3);
  g.set_name("p3");
  std::ostringstream out;
  write_dot(out, g);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph \"p3\""), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace mcast
