// Strict parameter parsing (lab/params.hpp). The headline regression:
// MCAST_BENCH_SCALE=abc used to flow through atoi and silently mean
// "smoke scale"; now every scalar is whole-string parsed and garbage is a
// loud std::invalid_argument.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "lab/params.hpp"

namespace mcast::lab {
namespace {

TEST(lab_params, i64_strict) {
  EXPECT_EQ(parse_i64("42", "x"), 42);
  EXPECT_EQ(parse_i64("-7", "x"), -7);
  EXPECT_THROW(parse_i64("", "x"), std::invalid_argument);
  EXPECT_THROW(parse_i64("abc", "x"), std::invalid_argument);
  EXPECT_THROW(parse_i64("12abc", "x"), std::invalid_argument);
  EXPECT_THROW(parse_i64("1.5", "x"), std::invalid_argument);
  EXPECT_THROW(parse_i64(" 12", "x"), std::invalid_argument);
  EXPECT_THROW(parse_i64("99999999999999999999999", "x"),
               std::invalid_argument);
}

TEST(lab_params, u64_strict) {
  EXPECT_EQ(parse_u64("0", "x"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615", "x"), ~std::uint64_t{0});
  EXPECT_THROW(parse_u64("-1", "x"), std::invalid_argument);
  EXPECT_THROW(parse_u64("+3", "x"), std::invalid_argument);
  EXPECT_THROW(parse_u64("18446744073709551616", "x"),
               std::invalid_argument);
  EXPECT_THROW(parse_u64("1e3", "x"), std::invalid_argument);
}

TEST(lab_params, real_strict) {
  EXPECT_DOUBLE_EQ(parse_real("1.5", "x"), 1.5);
  EXPECT_DOUBLE_EQ(parse_real("-2e3", "x"), -2000.0);
  EXPECT_THROW(parse_real("", "x"), std::invalid_argument);
  EXPECT_THROW(parse_real("1.5x", "x"), std::invalid_argument);
  EXPECT_THROW(parse_real("nanana", "x"), std::invalid_argument);
  EXPECT_THROW(parse_real("inf", "x"), std::invalid_argument);  // not finite
}

TEST(lab_params, bool_strict) {
  EXPECT_TRUE(parse_bool("true", "x"));
  EXPECT_TRUE(parse_bool("1", "x"));
  EXPECT_FALSE(parse_bool("false", "x"));
  EXPECT_FALSE(parse_bool("0", "x"));
  EXPECT_THROW(parse_bool("yes", "x"), std::invalid_argument);
  EXPECT_THROW(parse_bool("TRUE", "x"), std::invalid_argument);
}

TEST(lab_params, scale_strict_and_clamped) {
  EXPECT_EQ(parse_scale("0"), 0);
  EXPECT_EQ(parse_scale("1"), 1);
  EXPECT_EQ(parse_scale("2"), 2);
  EXPECT_EQ(parse_scale("99"), 8);   // clamped high
  EXPECT_EQ(parse_scale("-3"), 0);   // clamped low
  EXPECT_THROW(parse_scale("abc"), std::invalid_argument);  // the old atoi hole
  EXPECT_THROW(parse_scale("1x"), std::invalid_argument);
  EXPECT_THROW(parse_scale(""), std::invalid_argument);
}

TEST(lab_params, scale_from_env) {
  ASSERT_EQ(unsetenv("MCAST_BENCH_SCALE"), 0);
  EXPECT_EQ(scale_from_env(), 1);  // unset -> normal tier

  ASSERT_EQ(setenv("MCAST_BENCH_SCALE", "0", 1), 0);
  EXPECT_EQ(scale_from_env(), 0);
  ASSERT_EQ(setenv("MCAST_BENCH_SCALE", "2", 1), 0);
  EXPECT_EQ(scale_from_env(), 2);

  // Garbage must be rejected, not silently mapped to 0 (the atoi bug).
  ASSERT_EQ(setenv("MCAST_BENCH_SCALE", "abc", 1), 0);
  EXPECT_THROW(scale_from_env(), std::invalid_argument);
  ASSERT_EQ(setenv("MCAST_BENCH_SCALE", "", 1), 0);
  EXPECT_THROW(scale_from_env(), std::invalid_argument);

  ASSERT_EQ(unsetenv("MCAST_BENCH_SCALE"), 0);
}

TEST(lab_params, render_parse_round_trip) {
  const param_value samples[] = {
      param_value{std::int64_t{-42}},
      param_value{std::uint64_t{1999}},
      param_value{0.1},            // not exactly representable; %.17g must
      param_value{1.0 / 3.0},      // round-trip the bits regardless
      param_value{true},
      param_value{std::string{"all"}},
  };
  for (const param_value& v : samples) {
    const param_value back = parse_value(kind_of(v), render(v), "x");
    EXPECT_EQ(back, v) << render(v);
  }
}

TEST(lab_params, tier_defaults) {
  const param_spec tiered = p_u64("n", "d", 10, 100, 1000);
  EXPECT_EQ(std::get<std::uint64_t>(tiered.default_for(-1)), 10u);
  EXPECT_EQ(std::get<std::uint64_t>(tiered.default_for(0)), 10u);
  EXPECT_EQ(std::get<std::uint64_t>(tiered.default_for(1)), 100u);
  EXPECT_EQ(std::get<std::uint64_t>(tiered.default_for(2)), 1000u);
  EXPECT_EQ(std::get<std::uint64_t>(tiered.default_for(8)), 1000u);

  const param_spec fixed = p_real("x", "d", 2.5);
  for (int s : {0, 1, 2}) {
    EXPECT_DOUBLE_EQ(std::get<double>(fixed.default_for(s)), 2.5);
  }
}

TEST(lab_params, resolve_defaults_and_overrides) {
  const std::vector<param_spec> specs = {
      p_u64("seed", "rng seed", 7),
      p_real("horizon", "time", 10.0, 20.0, 40.0),
      p_text("mode", "style", "fast"),
  };
  const param_set at0 = resolve_params(specs, 0, {});
  EXPECT_EQ(at0.u64("seed"), 7u);
  EXPECT_DOUBLE_EQ(at0.real("horizon"), 10.0);
  EXPECT_EQ(at0.text("mode"), "fast");

  const param_set over =
      resolve_params(specs, 1, {{"horizon", "33.5"}, {"mode", "slow"}});
  EXPECT_DOUBLE_EQ(over.real("horizon"), 33.5);
  EXPECT_EQ(over.text("mode"), "slow");
  EXPECT_EQ(over.u64("seed"), 7u);  // untouched default

  // Unknown override names and ill-typed values are loud.
  EXPECT_THROW(resolve_params(specs, 0, {{"bogus", "1"}}),
               std::invalid_argument);
  EXPECT_THROW(resolve_params(specs, 0, {{"seed", "notanumber"}}),
               std::invalid_argument);
}

TEST(lab_params, typed_getters_check_kind) {
  const param_set p = resolve_params({p_u64("n", "d", 3)}, 0, {});
  EXPECT_EQ(p.u64("n"), 3u);
  EXPECT_THROW(p.real("n"), std::logic_error);    // kind mismatch
  EXPECT_THROW(p.u64("absent"), std::logic_error);  // undeclared name
}

}  // namespace
}  // namespace mcast::lab
