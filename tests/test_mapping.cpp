// n <-> m mapping (Equations 1-2): closed forms, inverses, Monte-Carlo
// agreement, asymptotic limit.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "analysis/mapping.hpp"
#include "multicast/receivers.hpp"
#include "sim/rng.hpp"

namespace mcast {
namespace {

TEST(mapping, expected_distinct_anchors) {
  EXPECT_DOUBLE_EQ(expected_distinct(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_distinct(100.0, 1.0), 1.0);
  // Two draws: 2 - 1/M expected distinct.
  EXPECT_NEAR(expected_distinct(100.0, 2.0), 2.0 - 1.0 / 100.0, 1e-12);
  // Huge n saturates at M.
  EXPECT_NEAR(expected_distinct(100.0, 1e9), 100.0, 1e-6);
}

TEST(mapping, expected_distinct_monotone_in_n) {
  double prev = -1.0;
  for (double n = 0.0; n <= 400.0; n += 10.0) {
    const double m = expected_distinct(128.0, n);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(mapping, inverse_round_trip) {
  const double m_sites = 4096.0;
  for (double m : {1.0, 10.0, 100.0, 1000.0, 4000.0}) {
    const double n = draws_for_expected_distinct(m_sites, m);
    EXPECT_NEAR(expected_distinct(m_sites, n), m, 1e-8);
  }
}

TEST(mapping, monte_carlo_agreement) {
  // Draw n=300 from M=200 sites and compare distinct-count mean to Eq 1.
  const std::size_t m_sites = 200;
  std::vector<node_id> universe(m_sites);
  for (node_id i = 0; i < m_sites; ++i) universe[i] = i;
  rng gen(13);
  double total = 0.0;
  constexpr int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto draws = sample_with_replacement(universe, 300, gen);
    total += static_cast<double>(std::set<node_id>(draws.begin(), draws.end()).size());
  }
  const double simulated = total / trials;
  const double predicted = expected_distinct(200.0, 300.0);
  EXPECT_NEAR(simulated, predicted, 0.5);
}

TEST(mapping, coverage_fraction_limit) {
  // y = 1 - e^{-x}, and the finite-M formula converges to it.
  EXPECT_DOUBLE_EQ(coverage_fraction(0.0), 0.0);
  EXPECT_NEAR(coverage_fraction(1.0), 1.0 - std::exp(-1.0), 1e-12);
  const double m_sites = 1e7;
  const double x = 0.7;
  EXPECT_NEAR(expected_distinct(m_sites, x * m_sites) / m_sites,
              coverage_fraction(x), 1e-6);
}

TEST(mapping, draws_fraction_inverts_coverage) {
  for (double y : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(coverage_fraction(draws_fraction(y)), y, 1e-12);
  }
}

TEST(mapping, equivalent_draws_asymptotic_matches_exact_for_large_m) {
  const double m_sites = 1e6;
  for (double m : {10.0, 1000.0, 5e5}) {
    const double exact = draws_for_expected_distinct(m_sites, m);
    const double approx = equivalent_draws_asymptotic(m_sites, m);
    EXPECT_NEAR(approx / exact, 1.0, 1e-4) << "m=" << m;
  }
}

TEST(mapping, validation) {
  EXPECT_THROW(expected_distinct(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(expected_distinct(10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(draws_for_expected_distinct(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(draws_for_expected_distinct(10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(draws_fraction(1.0), std::invalid_argument);
  EXPECT_THROW(draws_fraction(-0.1), std::invalid_argument);
  EXPECT_THROW(coverage_fraction(-1.0), std::invalid_argument);
  EXPECT_THROW(equivalent_draws_asymptotic(10.0, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
