// Connected components: labeling, extraction, repair.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "topo/regular.hpp"

namespace mcast {
namespace {

graph two_islands() {
  // Island A: 0-1-2 path; island B: 3-4; isolated: 5.
  graph_builder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  return b.build();
}

TEST(components, labels_and_sizes) {
  const component_map cm = connected_components(two_islands());
  EXPECT_EQ(cm.count, 3u);
  EXPECT_EQ(cm.label[0], cm.label[1]);
  EXPECT_EQ(cm.label[1], cm.label[2]);
  EXPECT_EQ(cm.label[3], cm.label[4]);
  EXPECT_NE(cm.label[0], cm.label[3]);
  EXPECT_NE(cm.label[0], cm.label[5]);
  std::size_t total = 0;
  for (std::size_t s : cm.size) total += s;
  EXPECT_EQ(total, 6u);
}

TEST(components, is_connected) {
  EXPECT_TRUE(is_connected(make_ring(5)));
  EXPECT_FALSE(is_connected(two_islands()));
  EXPECT_TRUE(is_connected(graph{}));  // empty counts as connected
  EXPECT_TRUE(is_connected(make_path(1)));
}

TEST(components, largest_component_extraction) {
  const graph g = largest_component(two_islands());
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(components, largest_component_preserves_name) {
  graph g = two_islands();
  g.set_name("islands");
  EXPECT_EQ(largest_component(g).name(), "islands");
}

TEST(components, largest_component_of_connected_graph_is_identity_shaped) {
  const graph ring = make_ring(7);
  const graph lc = largest_component(ring);
  EXPECT_EQ(lc.node_count(), ring.node_count());
  EXPECT_EQ(lc.edge_count(), ring.edge_count());
}

TEST(components, largest_component_of_empty_graph) {
  EXPECT_TRUE(largest_component(graph{}).empty());
}

TEST(components, connect_components_adds_minimum_edges) {
  const graph g = connect_components(two_islands());
  EXPECT_TRUE(is_connected(g));
  // 3 components need exactly 2 extra edges.
  EXPECT_EQ(g.edge_count(), 3u + 2u);
  EXPECT_EQ(g.node_count(), 6u);
}

TEST(components, connect_components_noop_when_connected) {
  const graph ring = make_ring(5);
  const graph g = connect_components(ring);
  EXPECT_EQ(g.edge_count(), ring.edge_count());
}

}  // namespace
}  // namespace mcast
