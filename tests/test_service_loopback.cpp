// Loopback integration tests for the line server + query service:
//   * 32 concurrent clients firing mixed pipelined requests — zero dropped
//     connections, and every deterministic response byte-identical to a
//     single-threaded replay of the same request;
//   * a garbage-frame corpus against a live server leaves it serving;
//   * oversized frames get the typed overlong error and a close;
//   * admission control, made deterministic with a gated handler on a
//     queue=1/workers=1 server: the third client is refused with a typed
//     overloaded line and the rejection lands in the obs registry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"

namespace mcast::service {
namespace {

using net::line_reader;
using net::line_server;
using net::server_config;
using net::unique_fd;

constexpr int kReadTimeoutMs = 30000;

server_config service_config(std::size_t workers, std::size_t queue) {
  server_config config;
  config.port = 0;
  config.workers = workers;
  config.queue_capacity = queue;
  config.overload_response =
      error_response(error_code::overloaded, "connection queue full");
  config.overlong_response =
      error_response(error_code::limit_exceeded, "request line too long");
  config.internal_error_response =
      error_response(error_code::internal_error, "handler failed");
  return config;
}

/// Sends `requests` over one connection (pipelined: all writes first),
/// then reads one response per request.
std::vector<std::string> roundtrip(std::uint16_t port,
                                   const std::vector<std::string>& requests) {
  unique_fd conn = net::connect_loopback(port);
  std::string batch;
  for (const std::string& r : requests) batch += r + "\n";
  if (!net::send_all(conn.get(), batch)) {
    ADD_FAILURE() << "send failed";
    return {};
  }
  std::vector<std::string> responses;
  line_reader reader(conn.get(), 1 << 22);
  std::string line;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const line_reader::status st = reader.read_line(line, kReadTimeoutMs);
    if (st != line_reader::status::line) {
      ADD_FAILURE() << "response " << i << " missing (status "
                    << static_cast<int>(st) << ")";
      return responses;
    }
    responses.push_back(line);
  }
  return responses;
}

bool response_ok(const std::string& line) {
  const json::value doc = json::parse(line);
  const json::value* ok = doc.get("ok");
  return ok != nullptr && ok->is(json::value::kind::boolean) && ok->as_bool();
}

TEST(service_loopback, concurrent_clients_match_serial_replay) {
  obs::reset_metrics();
  auto svc = std::make_shared<query_service>();
  line_server server(
      service_config(4, 64),
      [svc](const std::string& line) { return svc->handle(line); });
  svc->set_stats_source([&server] { return server.stats(); });

  constexpr int kClients = 32;
  // Deterministic per-client request mix. Everything except healthz is a
  // pure function of the request, so responses must replay bit-for-bit.
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) {
    requests[c] = {
        "{\"op\":\"lmhat\",\"k\":" + std::to_string(2 + c % 5) +
            ",\"depth\":4,\"n\":[1,10,100]}",
        "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":" +
            std::to_string(c % 40) + "}",
        "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":"
        "[2,4,8],\"sources\":3,\"receiver_sets\":2,\"seed\":" +
            std::to_string(100 + c) + "}",
        "{\"op\":\"healthz\",\"id\":" + std::to_string(c) + "}",
        "{\"op\":\"lmhat\",\"k\":3,\"depth\":6,\"n\":" +
            std::to_string(1 + c) + "}",
    };
  }

  std::vector<std::vector<std::string>> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        responses[c] = roundtrip(server.port(), requests[c]);
      });
    }
    for (std::thread& t : clients) t.join();
  }

  // Zero dropped connections: every client got every response.
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), requests[c].size()) << "client " << c;
  }
  const net::server_stats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * requests[0].size()));

  // Byte-identity against a fresh single-threaded service. healthz is
  // live state — only its ok bit is checked.
  query_service replay;
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < requests[c].size(); ++i) {
      if (requests[c][i].find("healthz") != std::string::npos) {
        EXPECT_TRUE(response_ok(responses[c][i])) << responses[c][i];
        continue;
      }
      EXPECT_EQ(responses[c][i], replay.handle(requests[c][i]))
          << "client " << c << " request " << i;
    }
  }

  const obs::metrics_snapshot snap = obs::snapshot();
  if (snap.compiled_in) {
    EXPECT_EQ(snap.at(obs::counter::svc_connections_accepted),
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(snap.at(obs::counter::svc_requests),
              static_cast<std::uint64_t>(kClients * requests[0].size()));
    EXPECT_GE(snap.at(obs::gauge::svc_inflight_peak), 1u);
  }
}

TEST(service_loopback, garbage_frames_leave_the_server_serving) {
  auto svc = std::make_shared<query_service>();
  line_server server(
      service_config(2, 8),
      [svc](const std::string& line) { return svc->handle(line); });

  const std::vector<std::string> garbage = {
      "",                      // empty line
      "\x01\x02\xff binary",   // control bytes
      "{{{{{{",                // nested junk
      "}" ,                    // lone delimiter
      "[1,2,3]",               // non-object
      std::string(512, 'x'),   // long but under the cap
  };
  const std::vector<std::string> responses = roundtrip(server.port(), garbage);
  ASSERT_EQ(responses.size(), garbage.size());
  for (const std::string& r : responses) {
    EXPECT_FALSE(response_ok(r)) << r;
    EXPECT_NE(r.find("parse_error"), std::string::npos) << r;
  }

  // Still alive: a fresh connection gets a real answer.
  const std::vector<std::string> after =
      roundtrip(server.port(), {"{\"op\":\"healthz\"}"});
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(response_ok(after[0])) << after[0];
}

TEST(service_loopback, oversized_frame_gets_typed_error_then_close) {
  auto svc = std::make_shared<query_service>();
  server_config config = service_config(1, 4);
  config.max_line_bytes = 1024;
  line_server server(config, [svc](const std::string& line) {
    return svc->handle(line);
  });

  unique_fd conn = net::connect_loopback(server.port());
  const std::string huge(4096, 'a');
  ASSERT_TRUE(net::send_all(conn.get(), huge + "\n"));
  line_reader reader(conn.get(), 1 << 16);
  std::string line;
  ASSERT_EQ(reader.read_line(line, kReadTimeoutMs), line_reader::status::line);
  EXPECT_NE(line.find("limit_exceeded"), std::string::npos) << line;
  // The server terminates the connection after an unreadable frame. A
  // close with unread bytes still in the socket buffer surfaces as RST on
  // loopback, so either a clean EOF or a reset counts.
  const line_reader::status st = reader.read_line(line, kReadTimeoutMs);
  EXPECT_TRUE(st == line_reader::status::closed ||
              st == line_reader::status::error)
      << static_cast<int>(st);
}

TEST(service_loopback, admission_control_rejects_when_queue_is_full) {
  obs::reset_metrics();
  // One worker, one queue slot, and a handler that blocks until released:
  // client A occupies the worker, client B the queue slot, so client C's
  // rejection is deterministic, not a race.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> entered{0};
  server_config config = service_config(1, 1);
  line_server server(config, [&, opened](const std::string&) -> std::string {
    entered.fetch_add(1);
    opened.wait();
    return error_response(error_code::internal_error, "unused");
  });

  unique_fd a = net::connect_loopback(server.port());
  ASSERT_TRUE(net::send_all(a.get(), "{\"op\":\"healthz\"}\n"));
  // Wait until the worker is inside the handler (queue drained to 0).
  for (int i = 0; i < 500 && entered.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(entered.load(), 1) << "worker never picked up client A";

  unique_fd b = net::connect_loopback(server.port());
  // Wait until B is parked in the (now full) queue.
  for (int i = 0; i < 500 && server.stats().queue_depth == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.stats().queue_depth, 1u) << "client B never queued";

  // C must be refused with a typed overloaded line and a close.
  unique_fd c = net::connect_loopback(server.port());
  line_reader c_reader(c.get(), 1 << 16);
  std::string line;
  ASSERT_EQ(c_reader.read_line(line, kReadTimeoutMs),
            line_reader::status::line);
  EXPECT_NE(line.find("overloaded"), std::string::npos) << line;
  EXPECT_EQ(c_reader.read_line(line, kReadTimeoutMs),
            line_reader::status::closed);
  EXPECT_EQ(server.stats().rejected, 1u);

  gate.set_value();  // release A (and then B)
  line_reader a_reader(a.get(), 1 << 16);
  ASSERT_EQ(a_reader.read_line(line, kReadTimeoutMs),
            line_reader::status::line);

  const obs::metrics_snapshot snap = obs::snapshot();
  if (snap.compiled_in) {
    EXPECT_EQ(snap.at(obs::counter::svc_connections_rejected), 1u);
  }
  server.shutdown();
  server.wait();
}

TEST(service_loopback, graceful_shutdown_drains_queued_connections) {
  auto svc = std::make_shared<query_service>();
  line_server server(
      service_config(2, 16),
      [svc](const std::string& line) { return svc->handle(line); });
  const std::uint16_t port = server.port();

  // Park several connections with a request in flight, then shut down;
  // every response must still arrive before the close.
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::atomic<int> served{0};
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([port, &served] {
      const std::vector<std::string> responses =
          roundtrip(port, {"{\"op\":\"lmhat\",\"k\":2,\"depth\":8,\"n\":5}"});
      if (responses.size() == 1 && response_ok(responses[0])) {
        served.fetch_add(1);
      }
    });
  }
  // All clients in the door (accepted or already served) before draining
  // starts, so "zero drops across shutdown" is deterministic.
  for (int i = 0;
       i < 1000 && server.stats().accepted <
                       static_cast<std::uint64_t>(kClients);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.stats().accepted, static_cast<std::uint64_t>(kClients));
  server.shutdown();
  for (std::thread& t : clients) t.join();
  server.wait();
  EXPECT_EQ(served.load(), kClients);
}

}  // namespace
}  // namespace mcast::service
