// Unit tests for the sharded service core (service/shard_router.hpp):
//   * consistent-hash ring placement is a pure function of (shards,
//     replicas, key) — identical across ring instances and when asked
//     from many threads at once;
//   * growing the ring N -> N+1 moves keys only TO the new shard, and
//     the moved fraction stays near the expected K/(N+1);
//   * service_shard admission: a full queue refuses (submit() == false,
//     svc.shard.rejected counted), queued work still runs;
//   * the batch envelope: sub-op documents byte-identical to standalone
//     responses, per-slot typed errors, nested-batch and cap rejections —
//     identical between the flat and sharded hosts;
//   * scatter/gather: lm_estimate responses from a 4-shard core, a
//     1-shard core and the flat query_service are byte-identical, and
//     the scatter counters balance (chunks dispatched == spliced).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"
#include "topo/cache.hpp"

namespace mcast::service {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(consistent_hash_ring, placement_is_deterministic_across_instances) {
  const consistent_hash_ring a(4);
  const consistent_hash_ring b(4);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const std::uint64_t h = mix(i);
    EXPECT_EQ(a.owner_of_hash(h), b.owner_of_hash(h)) << "hash " << h;
  }
  // Topology keys route through the stable routing hash, not std::hash.
  for (std::uint64_t i = 0; i < 64; ++i) {
    topology_key key;
    key.name = "t" + std::to_string(i);
    key.seed = i;
    EXPECT_EQ(a.owner(key), b.owner(key)) << key.name;
  }
}

TEST(consistent_hash_ring, placement_is_identical_under_concurrency) {
  const consistent_hash_ring ring(8);
  std::vector<std::size_t> serial(2048);
  for (std::uint64_t i = 0; i < serial.size(); ++i) {
    serial[i] = ring.owner_of_hash(mix(i));
  }
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&ring, &serial, &mismatch] {
      for (std::uint64_t i = 0; i < serial.size(); ++i) {
        if (ring.owner_of_hash(mix(i)) != serial[i]) mismatch.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(consistent_hash_ring, every_shard_owns_keys) {
  const consistent_hash_ring ring(5);
  std::vector<std::uint64_t> owned(5, 0);
  constexpr std::uint64_t kKeys = 10000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ++owned[ring.owner_of_hash(mix(i))];
  }
  for (std::size_t s = 0; s < owned.size(); ++s) {
    // Expected share is 20%; 64 virtual nodes keep every shard above a
    // 5% floor with wide margin (relative std ~1/sqrt(64)).
    EXPECT_GT(owned[s], kKeys / 20) << "shard " << s << " owns too little";
  }
}

TEST(consistent_hash_ring, growth_moves_keys_only_to_the_new_shard) {
  // Each shard contributes the same virtual-node stream to every ring it
  // appears in, so adding shard N can only steal keys, never reshuffle
  // the survivors among shards 0..N-1.
  constexpr std::size_t kOld = 4;
  constexpr std::uint64_t kKeys = 10000;
  const consistent_hash_ring before(kOld);
  const consistent_hash_ring after(kOld + 1);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const std::uint64_t h = mix(i);
    const std::size_t was = before.owner_of_hash(h);
    const std::size_t now = after.owner_of_hash(h);
    if (was != now) {
      ++moved;
      EXPECT_EQ(now, kOld) << "key moved between surviving shards";
    }
  }
  // Expected movement is K/(N+1) = 2000; 64 virtual nodes per shard keep
  // the realized share within a modest factor of that.
  EXPECT_GT(moved, kKeys / (kOld + 1) / 3);
  EXPECT_LT(moved, kKeys * 2 / (kOld + 1));
}

TEST(consistent_hash_ring, single_shard_owns_everything) {
  const consistent_hash_ring ring(1);
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(ring.owner_of_hash(mix(i)), 0u);
  }
}

TEST(service_shard, full_queue_refuses_and_queued_work_still_runs) {
  obs::reset_metrics();
  service_shard shard(/*index=*/0, /*workers=*/1, /*queue_capacity=*/1,
                      /*warm=*/nullptr, /*lru_capacity=*/4);

  // Occupy the single worker, then the single queue slot; the third
  // submit must be refused without blocking.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> ran{0};
  ASSERT_TRUE(shard.submit([opened, &ran] {
    opened.wait();
    ran.fetch_add(1);
  }));
  // Wait for the worker to pick the blocker up so the queue is empty.
  for (int i = 0; i < 500 && shard.stats().inflight == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(shard.stats().inflight, 1u);
  ASSERT_TRUE(shard.submit([&ran] { ran.fetch_add(1); }));
  EXPECT_FALSE(shard.submit([&ran] { ran.fetch_add(1); }));

  const service_shard::shard_stats stats = shard.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_capacity, 1u);
  gate.set_value();
  shard.shutdown();  // drains the queued task before joining
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(shard.stats().tasks_executed, 2u);

  const obs::metrics_snapshot snap = obs::snapshot();
  if (snap.compiled_in) {
    EXPECT_EQ(snap.at(obs::counter::svc_shard_rejected), 1u);
    EXPECT_EQ(snap.at(obs::counter::svc_shard_tasks), 2u);
  }
}

// --- batch envelope ----------------------------------------------------

json::value parse_line(const std::string& line) { return json::parse(line); }

TEST(batch_envelope, subop_documents_match_standalone_responses) {
  query_service svc;
  const std::string sub_a = "{\"op\":\"lmhat\",\"k\":3,\"depth\":4,\"n\":[1,10],\"id\":\"a\"}";
  const std::string sub_b =
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":2,"
      "\"id\":\"b\"}";
  const std::string sub_c = "{\"op\":\"nosuch\",\"id\":\"c\"}";
  const std::string batch =
      "{\"op\":\"batch\",\"id\":\"env\",\"ops\":[" + sub_a + "," + sub_b +
      "," + sub_c + "]}";

  const json::value doc = parse_line(svc.handle(batch));
  ASSERT_TRUE(doc.get("ok")->as_bool());
  EXPECT_EQ(doc.get("id")->as_string(), "env");
  const json::value* result = doc.get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->get("count")->as_number(), 3.0);
  EXPECT_EQ(result->get("ok_count")->as_number(), 2.0);
  EXPECT_EQ(result->get("error_count")->as_number(), 1.0);
  const std::vector<json::value>& results = result->get("results")->items();
  ASSERT_EQ(results.size(), 3u);
  // Each slot is byte-identical to the standalone response line.
  EXPECT_EQ(json::dump_compact(results[0]), svc.handle(sub_a));
  EXPECT_EQ(json::dump_compact(results[1]), svc.handle(sub_b));
  EXPECT_EQ(json::dump_compact(results[2]), svc.handle(sub_c));
  EXPECT_FALSE(results[2].get("ok")->as_bool());
}

TEST(batch_envelope, rejects_nesting_missing_ops_and_oversize) {
  query_service svc;
  const std::string nested =
      "{\"op\":\"batch\",\"ops\":[{\"op\":\"batch\",\"ops\":[]}]}";
  const json::value doc = parse_line(svc.handle(nested));
  ASSERT_TRUE(doc.get("ok")->as_bool());  // envelope ok, slot failed
  const std::vector<json::value>& results =
      doc.get("result")->get("results")->items();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].get("ok")->as_bool());
  EXPECT_EQ(results[0].get("error")->get("code")->as_string(), "bad_request");

  const json::value missing = parse_line(svc.handle("{\"op\":\"batch\"}"));
  EXPECT_FALSE(missing.get("ok")->as_bool());
  const json::value empty =
      parse_line(svc.handle("{\"op\":\"batch\",\"ops\":[]}"));
  EXPECT_FALSE(empty.get("ok")->as_bool());

  std::string big = "{\"op\":\"batch\",\"ops\":[";
  for (std::size_t i = 0; i <= svc.limits().max_batch_ops; ++i) {
    if (i > 0) big += ",";
    big += "{\"op\":\"healthz\"}";
  }
  big += "]}";
  const json::value capped = parse_line(svc.handle(big));
  EXPECT_FALSE(capped.get("ok")->as_bool());
  EXPECT_EQ(capped.get("error")->get("code")->as_string(), "limit_exceeded");
}

TEST(batch_envelope, identical_between_flat_and_sharded_hosts) {
  query_service flat;
  sharded_config config;
  config.shards = 3;
  sharded_service sharded(config);
  const std::vector<std::string> lines = {
      "{\"op\":\"batch\",\"id\":\"x\",\"ops\":["
      "{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1,10],\"id\":\"s0\"},"
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2,4],"
      "\"sources\":5,\"receiver_sets\":2,\"seed\":42,\"id\":\"s1\"},"
      "{\"op\":\"nosuch\",\"id\":\"s2\"}]}",
      "{\"op\":\"batch\"}",
      "{\"op\":\"batch\",\"ops\":[{\"op\":\"batch\",\"ops\":[]}]}",
      "{\"op\":\"nosuch\"}",
      "not json at all",
  };
  for (const std::string& line : lines) {
    EXPECT_EQ(sharded.handle(line), flat.handle(line)) << line;
  }
}

// --- scatter/gather ----------------------------------------------------

TEST(scatter_gather, lm_estimate_is_byte_identical_across_shard_counts) {
  obs::reset_metrics();
  sharded_config four_config;
  four_config.shards = 4;
  sharded_service four(four_config);
  sharded_config one_config;
  one_config.shards = 1;
  sharded_service one(one_config);
  query_service flat;

  const std::vector<std::string> estimates = {
      // sources > shards: every shard folds a chunk.
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":"
      "[2,4,8,16],\"sources\":9,\"receiver_sets\":3,\"seed\":7}",
      // sources < shards: fewer chunks than shards.
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2,4],"
      "\"sources\":2,\"receiver_sets\":2,\"seed\":11}",
      // with-replacement model and a derived grid.
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"model\":"
      "\"replacement\",\"grid_points\":4,\"sources\":6,\"receiver_sets\":2,"
      "\"seed\":13}",
      // single source: degenerate scatter.
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2,4],"
      "\"sources\":1,\"receiver_sets\":2,\"seed\":17}",
  };
  for (const std::string& line : estimates) {
    const std::string a = four.handle(line);
    EXPECT_EQ(a, one.handle(line)) << line;
    EXPECT_EQ(a, flat.handle(line)) << line;
    EXPECT_NE(a.find("\"ok\":true"), std::string::npos) << a;
  }

  const obs::metrics_snapshot snap = obs::snapshot();
  if (snap.compiled_in) {
    EXPECT_GT(snap.at(obs::counter::svc_scatter_requests), 0u);
    EXPECT_EQ(snap.at(obs::counter::svc_scatter_chunks),
              snap.at(obs::counter::svc_scatter_spliced));
  }
}

TEST(sharded_service, metrics_op_reports_per_shard_gauges) {
  sharded_config config;
  config.shards = 3;
  sharded_service svc(config);
  // Push some routed work through so the shard counters move.
  (void)svc.handle(
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":1}");

  const json::value doc =
      parse_line(svc.handle("{\"op\":\"metrics\",\"id\":\"m\"}"));
  ASSERT_TRUE(doc.get("ok")->as_bool());
  const json::value* shards = doc.get("result")->get("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is(json::value::kind::array));
  ASSERT_EQ(shards->items().size(), 3u);
  std::uint64_t executed = 0;
  for (const json::value& row : shards->items()) {
    EXPECT_NE(row.get("queue_depth"), nullptr);
    EXPECT_NE(row.get("inflight"), nullptr);
    EXPECT_NE(row.get("queue_capacity"), nullptr);
    executed += static_cast<std::uint64_t>(
        row.get("tasks_executed")->as_number());
  }
  EXPECT_GE(executed, 1u);

  // The flat service must NOT grow a shards section (byte-stability of
  // its metrics document is covered by the service protocol tests).
  query_service flat;
  const json::value flat_doc =
      parse_line(flat.handle("{\"op\":\"metrics\",\"id\":\"m\"}"));
  EXPECT_EQ(flat_doc.get("result")->get("shards"), nullptr);
}

TEST(sharded_service, warm_tier_serves_without_touching_shard_lrus) {
  obs::reset_metrics();
  sharded_config config;
  config.shards = 2;
  sharded_service svc(config);
  topology_key arpa;
  arpa.name = "ARPA";
  arpa.seed = 7;
  svc.warm({arpa});
  EXPECT_EQ(svc.warm_tier().size(), 1u);

  const std::string line =
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":3}";
  const std::string first = svc.handle(line);
  EXPECT_EQ(svc.handle(line), first);

  EXPECT_GE(svc.warm_tier().hits(), 2u);
  for (const service_shard::shard_stats& s : svc.shard_stats()) {
    (void)s;
  }
  const obs::metrics_snapshot snap = obs::snapshot();
  if (snap.compiled_in) {
    EXPECT_GE(snap.at(obs::counter::topo_cache_warm_hits), 2u);
    EXPECT_EQ(snap.at(obs::gauge::topo_cache_warm_entries), 1u);
  }
}

}  // namespace
}  // namespace mcast::service
