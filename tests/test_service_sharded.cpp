// Loopback integration tests for the sharded service core behind the
// line server:
//   * 32 concurrent clients firing mixed pipelined requests (including
//     scattered lm_estimate and batch envelopes) at a 4-shard core —
//     zero dropped connections, and every deterministic response
//     byte-identical to a single-threaded replay through both a 1-shard
//     core and the flat query_service;
//   * shutdown drains routed work (no task is abandoned mid-scatter).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/access_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"

namespace mcast::service {
namespace {

using net::line_reader;
using net::line_server;
using net::server_config;
using net::unique_fd;

constexpr int kReadTimeoutMs = 60000;

server_config service_config(std::size_t workers, std::size_t queue) {
  server_config config;
  config.port = 0;
  config.workers = workers;
  config.queue_capacity = queue;
  config.overload_response =
      error_response(error_code::overloaded, "connection queue full");
  config.overlong_response =
      error_response(error_code::limit_exceeded, "request line too long");
  config.internal_error_response =
      error_response(error_code::internal_error, "handler failed");
  return config;
}

std::vector<std::string> roundtrip(std::uint16_t port,
                                   const std::vector<std::string>& requests) {
  unique_fd conn = net::connect_loopback(port);
  std::string batch;
  for (const std::string& r : requests) batch += r + "\n";
  if (!net::send_all(conn.get(), batch)) {
    ADD_FAILURE() << "send failed";
    return {};
  }
  std::vector<std::string> responses;
  line_reader reader(conn.get(), 1 << 22);
  std::string line;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const line_reader::status st = reader.read_line(line, kReadTimeoutMs);
    if (st != line_reader::status::line) {
      ADD_FAILURE() << "response " << i << " missing (status "
                    << static_cast<int>(st) << ")";
      return responses;
    }
    responses.push_back(line);
  }
  return responses;
}

bool response_ok(const std::string& line) {
  const json::value doc = json::parse(line);
  const json::value* ok = doc.get("ok");
  return ok != nullptr && ok->is(json::value::kind::boolean) && ok->as_bool();
}

TEST(service_sharded, concurrent_clients_match_single_shard_serial_replay) {
  obs::reset_metrics();
  sharded_config config;
  config.shards = 4;
  auto svc = std::make_shared<sharded_service>(config);
  topology_key arpa;
  arpa.name = "ARPA";
  arpa.seed = 7;
  svc->warm({arpa});

  line_server server(
      service_config(4, 64),
      [svc](const std::string& line) { return svc->handle(line); });
  svc->set_stats_source([&server] { return server.stats(); });

  constexpr int kClients = 32;
  // Deterministic per-client request mix. Everything except healthz is a
  // pure function of the request, so responses must replay bit-for-bit —
  // including the lm_estimate lines the 4-shard core scatters and the
  // batch envelope it unpacks slot by slot.
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) {
    requests[c] = {
        "{\"op\":\"lmhat\",\"k\":" + std::to_string(2 + c % 5) +
            ",\"depth\":4,\"n\":[1,10,100]}",
        "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":" +
            std::to_string(c % 40) + "}",
        "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":"
        "[2,4,8],\"sources\":" +
            std::to_string(2 + c % 6) + ",\"receiver_sets\":2,\"seed\":" +
            std::to_string(100 + c) + "}",
        "{\"op\":\"batch\",\"id\":\"b" + std::to_string(c) +
            "\",\"ops\":[{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1,10]},"
            "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":" +
            std::to_string(c % 7) + "},{\"op\":\"nosuch\"}]}",
        "{\"op\":\"healthz\",\"id\":" + std::to_string(c) + "}",
    };
  }

  std::vector<std::vector<std::string>> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        responses[c] = roundtrip(server.port(), requests[c]);
      });
    }
    for (std::thread& t : clients) t.join();
  }

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), requests[c].size()) << "client " << c;
  }
  const net::server_stats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.rejected, 0u);

  // Byte-identity against a fresh 1-shard core AND the flat service, both
  // replayed single-threaded. healthz is live state — ok bit only.
  sharded_config one_config;
  one_config.shards = 1;
  sharded_service one_shard(one_config);
  query_service flat;
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < requests[c].size(); ++i) {
      if (requests[c][i].find("healthz") != std::string::npos) {
        EXPECT_TRUE(response_ok(responses[c][i])) << responses[c][i];
        continue;
      }
      EXPECT_EQ(responses[c][i], one_shard.handle(requests[c][i]))
          << "client " << c << " request " << i << " vs 1-shard";
      EXPECT_EQ(responses[c][i], flat.handle(requests[c][i]))
          << "client " << c << " request " << i << " vs flat";
    }
  }

  const obs::metrics_snapshot snap = obs::snapshot();
  if (snap.compiled_in) {
    // Scatter/gather and batch splice accounting must balance, and the
    // warmed topology must have served at least one request.
    EXPECT_EQ(snap.at(obs::counter::svc_scatter_chunks),
              snap.at(obs::counter::svc_scatter_spliced));
    EXPECT_EQ(snap.at(obs::counter::svc_batch_subops),
              snap.at(obs::counter::svc_batch_spliced));
    EXPECT_GE(snap.at(obs::counter::topo_cache_warm_hits), 1u);
    EXPECT_GT(snap.at(obs::counter::svc_shard_tasks), 0u);
  }
  server.shutdown();
  server.wait();
  svc->shutdown();
}

TEST(service_sharded, responses_identical_with_tracing_and_access_log) {
  if (!obs::snapshot().compiled_in) GTEST_SKIP() << "obs disabled";
  // The observability acceptance bar: arming span rings and the access
  // log must not move a single response byte, at any shard count.
  const std::vector<std::string> requests = {
      "{\"op\":\"lmhat\",\"trace\":\"t-a1\",\"k\":3,\"depth\":4,"
      "\"n\":[1,10,100]}",
      "{\"op\":\"lm_estimate\",\"topology\":\"ARPA\",\"group_sizes\":[2,4],"
      "\"sources\":3,\"receiver_sets\":2,\"seed\":9}",
      "{\"op\":\"reachability\",\"topology\":\"ARPA\",\"source\":5}",
      "{\"op\":\"batch\",\"trace\":\"b-a2\",\"ops\":["
      "{\"op\":\"lmhat\",\"k\":2,\"depth\":3,\"n\":[1,10]},"
      "{\"op\":\"nosuch\"}]}",
      "not json at all",
  };

  // Reference responses: observability fully quiet.
  obs::trace_disable();
  obs::trace_clear();
  std::vector<std::string> expected;
  {
    sharded_config config;
    config.shards = 2;
    sharded_service svc(config);
    for (const std::string& r : requests) expected.push_back(svc.handle(r));
    svc.shutdown();
  }

  const std::string log_path =
      ::testing::TempDir() + "sharded_identity_access.jsonl";
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    obs::trace_clear();
    obs::trace_enable();
    obs::access_log_enable(log_path);
    sharded_config config;
    config.shards = shards;
    sharded_service svc(config);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(svc.handle(requests[i]), expected[i])
          << "request " << i << " at " << shards << " shard(s)";
    }
    svc.shutdown();
    obs::access_log_disable();
    obs::trace_disable();
    obs::trace_clear();
  }
}

TEST(service_sharded, shutdown_is_idempotent_and_drains) {
  sharded_config config;
  config.shards = 2;
  sharded_service svc(config);
  EXPECT_NE(svc.handle("{\"op\":\"reachability\",\"topology\":\"ARPA\","
                       "\"source\":0}")
                .find("\"ok\":true"),
            std::string::npos);
  svc.shutdown();
  svc.shutdown();  // second call is a no-op, not a crash
}

}  // namespace
}  // namespace mcast::service
