// Erdős–Rényi and random-regular generators, plus the Section 4.2 claim
// that random graphs have exponentially increasing S(r).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/reachability.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "topo/random.hpp"

namespace mcast {
namespace {

TEST(erdos_renyi, edge_count_near_expectation) {
  erdos_renyi_params p;
  p.nodes = 400;
  p.edge_prob = 0.05;
  p.keep_largest_component = false;
  const graph g = make_erdos_renyi(p, 7);
  const double expected = 0.05 * 400.0 * 399.0 / 2.0;  // ~3990
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, 4.0 * std::sqrt(expected));
}

TEST(erdos_renyi, extreme_probabilities) {
  erdos_renyi_params p;
  p.nodes = 20;
  p.edge_prob = 0.0;
  p.keep_largest_component = false;
  EXPECT_EQ(make_erdos_renyi(p, 1).edge_count(), 0u);
  p.edge_prob = 1.0;
  EXPECT_EQ(make_erdos_renyi(p, 1).edge_count(), 190u);  // complete graph
}

TEST(erdos_renyi, giant_component_extraction) {
  erdos_renyi_params p;
  p.nodes = 1000;
  p.edge_prob = 3.0 / 1000.0;  // supercritical but not connected
  const graph g = make_erdos_renyi(p, 3);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.node_count(), 500u);
  EXPECT_LT(g.node_count(), 1000u);
}

TEST(erdos_renyi, deterministic_and_validated) {
  erdos_renyi_params p;
  p.nodes = 200;
  p.edge_prob = 0.04;
  EXPECT_EQ(make_erdos_renyi(p, 9).edges(), make_erdos_renyi(p, 9).edges());
  EXPECT_NE(make_erdos_renyi(p, 9).edges(), make_erdos_renyi(p, 10).edges());
  p.edge_prob = 1.5;
  EXPECT_THROW(make_erdos_renyi(p, 1), std::invalid_argument);
  p.edge_prob = -0.1;
  EXPECT_THROW(make_erdos_renyi(p, 1), std::invalid_argument);
  p = erdos_renyi_params{};
  p.nodes = 0;
  EXPECT_THROW(make_erdos_renyi(p, 1), std::invalid_argument);
}

TEST(erdos_renyi, uniform_pair_coverage) {
  // Every pair should appear with roughly equal frequency across seeds —
  // guards the pair_of index mapping.
  erdos_renyi_params p;
  p.nodes = 12;
  p.edge_prob = 0.3;
  p.keep_largest_component = false;
  std::vector<int> hits(12 * 12, 0);
  for (std::uint64_t seed = 0; seed < 600; ++seed) {
    for (const edge& e : make_erdos_renyi(p, seed).edges()) {
      ++hits[e.a * 12 + e.b];
    }
  }
  for (node_id a = 0; a < 12; ++a) {
    for (node_id b = a + 1; b < 12; ++b) {
      EXPECT_NEAR(hits[a * 12 + b] / 600.0, 0.3, 0.08)
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(random_regular, exact_degrees) {
  random_regular_params p;
  p.nodes = 100;
  p.degree = 4;
  const graph g = make_random_regular(p, 5);
  EXPECT_EQ(g.node_count(), 100u);
  EXPECT_EQ(g.edge_count(), 200u);
  for (node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(random_regular, deterministic_and_usually_connected) {
  random_regular_params p;
  p.nodes = 200;
  p.degree = 3;
  EXPECT_EQ(make_random_regular(p, 4).edges(), make_random_regular(p, 4).edges());
  // 3-regular random graphs are a.a.s. connected.
  int connected = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    connected += is_connected(make_random_regular(p, seed));
  }
  EXPECT_GE(connected, 4);
}

TEST(random_regular, validation) {
  random_regular_params p;
  p.nodes = 5;
  p.degree = 3;  // odd sum
  EXPECT_THROW(make_random_regular(p, 1), std::invalid_argument);
  p.nodes = 4;
  p.degree = 4;  // degree >= nodes
  EXPECT_THROW(make_random_regular(p, 1), std::invalid_argument);
  p.degree = 0;
  EXPECT_THROW(make_random_regular(p, 1), std::invalid_argument);
}

TEST(random_graphs, exponential_reachability_claim) {
  // Section 4.2: "Random graphs ... have the property that S(r) is
  // exponentially increasing". Random-regular S(r) ≈ d(d-1)^{r-1}.
  random_regular_params p;
  p.nodes = 2000;
  p.degree = 3;
  const graph g = make_random_regular(p, 11);
  const reachability_profile prof = reachability_from(g, 0);
  const auto fit = fit_reachability_growth(prof, 0.5);
  EXPECT_GT(fit.r_squared, 0.98);
  EXPECT_NEAR(fit.lambda, std::log(2.0), 0.25);  // growth factor d-1 = 2

  erdos_renyi_params ep;
  ep.nodes = 2000;
  ep.edge_prob = 4.0 / 2000.0;
  const graph er = make_erdos_renyi(ep, 11);
  const auto er_fit = fit_reachability_growth(reachability_from(er, 0), 0.5);
  EXPECT_GT(er_fit.r_squared, 0.97);
}

}  // namespace
}  // namespace mcast
