// scaling_law: fitting, prediction, efficiency algebra.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/scaling_law.hpp"

namespace mcast {
namespace {

std::vector<scaling_point> synthetic_measurement(double amplitude,
                                                 double exponent) {
  std::vector<scaling_point> rows;
  for (double m = 1.0; m <= 4096.0; m *= 2.0) {
    scaling_point p;
    p.group_size = static_cast<std::uint64_t>(m);
    p.ratio_mean = amplitude * std::pow(m, exponent);
    rows.push_back(p);
  }
  return rows;
}

TEST(scaling_law, default_is_canonical_chuang_sirbu) {
  const scaling_law law;
  EXPECT_DOUBLE_EQ(law.exponent(), 0.8);
  EXPECT_DOUBLE_EQ(law.amplitude(), 1.0);
  EXPECT_NEAR(law.normalized_tree_size(32.0), std::pow(32.0, 0.8), 1e-9);
}

TEST(scaling_law, fit_recovers_parameters) {
  const scaling_law law = scaling_law::fit_to(synthetic_measurement(1.3, 0.75));
  EXPECT_NEAR(law.exponent(), 0.75, 1e-9);
  EXPECT_NEAR(law.amplitude(), 1.3, 1e-8);
  EXPECT_NEAR(law.r_squared(), 1.0, 1e-12);
}

TEST(scaling_law, fit_window_excludes_rows) {
  auto rows = synthetic_measurement(1.0, 0.8);
  // Corrupt the endpoints; a [4, 1024] window must ignore them.
  rows.front().ratio_mean = 500.0;
  rows.back().ratio_mean = 0.001;
  const scaling_law law = scaling_law::fit_to(rows, 4.0, 1024.0);
  EXPECT_NEAR(law.exponent(), 0.8, 1e-9);
}

TEST(scaling_law, fit_requires_two_rows) {
  std::vector<scaling_point> rows = synthetic_measurement(1.0, 0.8);
  rows.resize(1);
  EXPECT_THROW(scaling_law::fit_to(rows), std::invalid_argument);
}

TEST(scaling_law, tree_size_scales_with_ubar) {
  const scaling_law law(1.0, 0.8);
  EXPECT_NEAR(law.tree_size(100.0, 12.0),
              12.0 * std::pow(100.0, 0.8), 1e-9);
}

TEST(scaling_law, efficiency_decreases_with_group_size) {
  const scaling_law law(1.0, 0.8);
  EXPECT_DOUBLE_EQ(law.efficiency(1.0), 1.0);
  EXPECT_GT(law.efficiency(10.0), law.efficiency(100.0));
  // δ(m) = m^{-0.2}.
  EXPECT_NEAR(law.efficiency(32.0), std::pow(32.0, -0.2), 1e-12);
}

TEST(scaling_law, advantage_is_reciprocal_of_efficiency) {
  const scaling_law law(1.2, 0.8);
  for (double m : {2.0, 20.0, 200.0}) {
    EXPECT_NEAR(law.multicast_advantage(m) * law.efficiency(m), 1.0, 1e-12);
  }
}

TEST(scaling_law, describe_mentions_parameters) {
  const scaling_law law(2.0, 0.8);
  const std::string text = law.describe();
  EXPECT_NE(text.find("m^0.8"), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

TEST(scaling_law, validation) {
  EXPECT_THROW(scaling_law(0.0, 0.8), std::invalid_argument);
  EXPECT_THROW(scaling_law(-1.0, 0.8), std::invalid_argument);
  const scaling_law law;
  EXPECT_THROW(law.normalized_tree_size(0.0), std::invalid_argument);
  EXPECT_THROW(law.tree_size(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
