// MBone-like overlay generator: connectivity, tunnel accounting, and the
// chain-heavy (sub-exponential) character the model is built to reproduce.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/reachability.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "topo/mbone.hpp"
#include "topo/power_law.hpp"

namespace mcast {
namespace {

mbone_params small_params() {
  mbone_params p;
  p.substrate.nodes = 600;
  p.overlay_nodes = 200;
  return p;
}

TEST(mbone, overlay_node_count_and_connectivity) {
  const graph g = make_mbone(small_params(), 1);
  EXPECT_EQ(g.node_count(), 200u);
  EXPECT_TRUE(is_connected(g));
}

TEST(mbone, edge_count_is_tree_plus_extras) {
  mbone_params p = small_params();
  p.extra_tunnel_fraction = 0.1;
  const graph g = make_mbone(p, 2);
  EXPECT_GE(g.edge_count(), 199u);            // spanning tree
  EXPECT_LE(g.edge_count(), 199u + 20u);       // + at most 10% extras
}

TEST(mbone, zero_extras_gives_exact_tree) {
  mbone_params p = small_params();
  p.extra_tunnel_fraction = 0.0;
  const graph g = make_mbone(p, 3);
  EXPECT_EQ(g.edge_count(), g.node_count() - 1u);
}

TEST(mbone, deterministic_given_seed) {
  const mbone_params p = small_params();
  EXPECT_EQ(make_mbone(p, 5).edges(), make_mbone(p, 5).edges());
  EXPECT_NE(make_mbone(p, 5).edges(), make_mbone(p, 6).edges());
}

TEST(mbone, chain_heavy_diameter) {
  // The tunnel MST should produce a diameter much larger than a random
  // graph of the same size would have.
  const graph g = make_mbone(small_params(), 7);
  EXPECT_GT(diameter_exact(g), 15u);
}

TEST(mbone, less_exponential_than_power_law_graph) {
  const graph mb = make_mbone(small_params(), 7);
  barabasi_albert_params bap;
  bap.nodes = 200;
  const graph ba = make_barabasi_albert(bap, 7);
  rng gen(9);
  const auto mb_fit = fit_reachability_growth(mean_reachability(mb, 16, gen));
  const auto ba_fit = fit_reachability_growth(mean_reachability(ba, 16, gen));
  EXPECT_LT(mb_fit.lambda, ba_fit.lambda)
      << "overlay growth rate should be below the BA growth rate";
}

TEST(mbone, invalid_parameters_throw) {
  mbone_params p = small_params();
  p.overlay_nodes = 1;
  EXPECT_THROW(make_mbone(p, 1), std::invalid_argument);
  p = small_params();
  p.overlay_nodes = p.substrate.nodes + 1;
  EXPECT_THROW(make_mbone(p, 1), std::invalid_argument);
  p = small_params();
  p.extra_tunnel_fraction = -0.5;
  EXPECT_THROW(make_mbone(p, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
