// Small fork/exec harness for tests that drive the mcast_lab binary as a
// real process (exit-code audit, serve shutdown). POSIX-only, like the
// rest of the networking stack.
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace mcast::testproc {

struct spawned {
  pid_t pid = -1;
  int stdout_fd = -1;
  int stderr_fd = -1;
};

/// fork/execs `argv[0]` with the given arguments; stdout and stderr come
/// back as pipe read ends. argv excludes the program name.
inline spawned spawn(const std::string& binary,
                     const std::vector<std::string>& argv) {
  int out_pipe[2], err_pipe[2];
  if (::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) return {};
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    std::vector<char*> args;
    args.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& a : argv) {
      args.push_back(const_cast<char*>(a.c_str()));
    }
    args.push_back(nullptr);
    ::execv(binary.c_str(), args.data());
    ::_exit(127);
  }
  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  spawned s;
  s.pid = pid;
  s.stdout_fd = out_pipe[0];
  s.stderr_fd = err_pipe[0];
  return s;
}

/// Reads until EOF (call after the writer side is done or closed).
inline std::string drain_fd(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0 || (n < 0 && errno != EINTR)) {
      break;
    }
  }
  return out;
}

struct run_result {
  int exit_code = -1;       ///< -1 when killed by a signal
  int term_signal = 0;
  std::string out;
  std::string err;
};

/// Waits for the child and collects both streams.
inline run_result finish(const spawned& s) {
  run_result r;
  r.out = drain_fd(s.stdout_fd);
  r.err = drain_fd(s.stderr_fd);
  ::close(s.stdout_fd);
  ::close(s.stderr_fd);
  int status = 0;
  while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  if (WIFSIGNALED(status)) r.term_signal = WTERMSIG(status);
  return r;
}

/// Convenience: run to completion and collect everything.
inline run_result run(const std::string& binary,
                      const std::vector<std::string>& argv) {
  return finish(spawn(binary, argv));
}

/// Reads from `fd` (with a deadline) until `needle` appears in the
/// accumulated text; returns everything read so far.
inline std::string read_until(int fd, const std::string& needle,
                              std::chrono::milliseconds deadline) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  std::string text;
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (text.find(needle) == std::string::npos &&
         std::chrono::steady_clock::now() < until) {
    char buf[1024];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      text.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return text;
}

}  // namespace mcast::testproc
