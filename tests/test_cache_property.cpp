// Property tests for the "caching is invisible" contract: run_scaling_study,
// the Monte-Carlo measurements and simulate_sessions must produce
// byte-identical results with the SPT cache on or off, and for any worker
// thread count — including runs where a failure trace exercises the
// degraded-view generation keying. All comparisons are exact double ==.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/runner.hpp"
#include "core/study.hpp"
#include "fault/degraded.hpp"
#include "fault/failure_model.hpp"
#include "session/simulator.hpp"
#include "topo/catalog.hpp"
#include "topo/transit_stub.hpp"

namespace mcast {
namespace {

void expect_same_points(const std::vector<scaling_point>& a,
                        const std::vector<scaling_point>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_size, b[i].group_size);
    EXPECT_EQ(a[i].tree_links_mean, b[i].tree_links_mean);
    EXPECT_EQ(a[i].tree_links_stderr, b[i].tree_links_stderr);
    EXPECT_EQ(a[i].unicast_mean, b[i].unicast_mean);
    EXPECT_EQ(a[i].ratio_mean, b[i].ratio_mean);
    EXPECT_EQ(a[i].ratio_stderr, b[i].ratio_stderr);
    EXPECT_EQ(a[i].distinct_mean, b[i].distinct_mean);
    EXPECT_EQ(a[i].samples, b[i].samples);
  }
}

void expect_same_study(const study_result& a, const study_result& b) {
  ASSERT_EQ(a.networks.size(), b.networks.size());
  for (std::size_t i = 0; i < a.networks.size(); ++i) {
    EXPECT_EQ(a.networks[i].name, b.networks[i].name);
    EXPECT_EQ(a.networks[i].nodes, b.networks[i].nodes);
    EXPECT_EQ(a.networks[i].links, b.networks[i].links);
    expect_same_points(a.networks[i].measurement, b.networks[i].measurement);
    EXPECT_EQ(a.networks[i].law.amplitude(), b.networks[i].law.amplitude());
    EXPECT_EQ(a.networks[i].law.exponent(), b.networks[i].law.exponent());
    EXPECT_EQ(a.networks[i].law.r_squared(), b.networks[i].law.r_squared());
  }
}

void expect_same_metrics(const session_metrics& a, const session_metrics& b) {
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.time_avg_links, b.time_avg_links);
  EXPECT_EQ(a.time_avg_members, b.time_avg_members);
  EXPECT_EQ(a.time_avg_sessions, b.time_avg_sessions);
  EXPECT_EQ(a.mean_group_size_at_join, b.mean_group_size_at_join);
  EXPECT_EQ(a.sessions_started, b.sessions_started);
  EXPECT_EQ(a.sessions_completed, b.sessions_completed);
  EXPECT_EQ(a.sessions_dropped, b.sessions_dropped);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.peak_links, b.peak_links);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.link_recoveries, b.link_recoveries);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.repair_links_churned, b.repair_links_churned);
  EXPECT_EQ(a.receivers_disconnected, b.receivers_disconnected);
  EXPECT_EQ(a.receivers_reconnected, b.receivers_reconnected);
  EXPECT_EQ(a.time_avg_reachable_fraction, b.time_avg_reachable_fraction);
}

study_config quick_config(bool use_cache, std::size_t threads) {
  study_config c;
  c.monte_carlo.receiver_sets = 4;
  c.monte_carlo.sources = 8;
  c.monte_carlo.seed = 2024;
  c.monte_carlo.use_spt_cache = use_cache;
  c.monte_carlo.threads = threads;
  c.grid_points = 6;
  return c;
}

graph small_ts(std::uint64_t seed) {
  transit_stub_params p;
  p.transit_domains = 2;
  p.transit_domain_size = 4;
  p.stubs_per_transit_node = 3;
  p.stub_domain_size = 4;
  return make_transit_stub(p, seed);
}

TEST(cache_property, study_identical_cache_on_off_and_any_thread_count) {
  const auto suite = scaled_networks(generated_networks(), 300);
  const study_result baseline =
      run_scaling_study(suite, quick_config(/*use_cache=*/true, /*threads=*/1));
  // Cache off, single thread.
  expect_same_study(baseline, run_scaling_study(
                                  suite, quick_config(false, 1)));
  // Cache on, two workers and "hardware concurrency" (0).
  expect_same_study(baseline, run_scaling_study(suite, quick_config(true, 2)));
  expect_same_study(baseline, run_scaling_study(suite, quick_config(true, 0)));
  // Cache off, threaded: the full 2x2 of knobs collapses to one result.
  expect_same_study(baseline, run_scaling_study(suite, quick_config(false, 2)));
}

TEST(cache_property, degraded_measurement_identical_cache_on_off_and_threads) {
  const graph g = small_ts(6);
  degraded_view view(g);
  view.apply(random_link_failures(g, 0.12, 99));
  view.fail_node(5);
  const std::vector<std::uint64_t> sizes{1, 4, 16, 40};

  monte_carlo_params params;
  params.receiver_sets = 5;
  params.sources = 12;
  params.seed = 31337;
  params.use_spt_cache = true;
  params.threads = 1;
  const auto baseline = measure_distinct_receivers(view, sizes, params);

  params.use_spt_cache = false;
  expect_same_points(baseline, measure_distinct_receivers(view, sizes, params));
  params.threads = 2;
  expect_same_points(baseline, measure_distinct_receivers(view, sizes, params));
  params.use_spt_cache = true;
  params.threads = 0;
  expect_same_points(baseline, measure_distinct_receivers(view, sizes, params));
}

TEST(cache_property, with_replacement_identical_cache_on_off) {
  const graph g = small_ts(9);
  const std::vector<std::uint64_t> sizes{1, 8, 64};
  monte_carlo_params params;
  params.receiver_sets = 4;
  params.sources = 10;
  params.seed = 7;
  params.use_spt_cache = true;
  const auto baseline = measure_with_replacement(g, sizes, params);
  params.use_spt_cache = false;
  expect_same_points(baseline, measure_with_replacement(g, sizes, params));
  params.threads = 2;
  expect_same_points(baseline, measure_with_replacement(g, sizes, params));
}

TEST(cache_property, sessions_identical_cache_on_off) {
  const graph g = small_ts(14);
  session_workload w;
  w.session_arrival_rate = 0.4;
  w.session_lifetime_mean = 25.0;
  w.member_join_rate = 2.0;
  w.member_lifetime_mean = 8.0;

  w.use_spt_cache = true;
  const auto on = simulate_sessions(g, w, 250.0, 40.0, 77);
  w.use_spt_cache = false;
  const auto off = simulate_sessions(g, w, 250.0, 40.0, 77);
  expect_same_metrics(on, off);
  EXPECT_GT(on.sessions_started, 0u);
  EXPECT_GT(on.joins, 0u);
}

TEST(cache_property, sessions_identical_cache_on_off_with_failure_trace) {
  const graph g = small_ts(18);
  session_workload w;
  w.session_arrival_rate = 0.5;
  w.session_lifetime_mean = 30.0;
  w.member_join_rate = 3.0;
  w.member_lifetime_mean = 10.0;

  failure_trace_params fp;
  fp.link_failure_rate = 0.004;
  fp.mean_repair_time = 15.0;
  fp.horizon = 300.0;
  const auto faults = make_failure_trace(g, fp, 1234);
  ASSERT_FALSE(faults.empty());

  w.use_spt_cache = true;
  const auto on = simulate_sessions(g, w, faults, 260.0, 40.0, 55);
  w.use_spt_cache = false;
  const auto off = simulate_sessions(g, w, faults, 260.0, 40.0, 55);
  expect_same_metrics(on, off);
  // The equivalence must have been exercised on the interesting paths:
  // failures applied, trees repaired through the generation-keyed cache.
  EXPECT_GT(on.link_failures, 0u);
  EXPECT_GT(on.repairs, 0u);
}

}  // namespace
}  // namespace mcast
