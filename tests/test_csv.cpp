// table_writer and series output: formatting contracts the benches rely on.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sim/csv.hpp"

namespace mcast {
namespace {

TEST(csv, table_requires_headers) {
  EXPECT_THROW(table_writer({}), std::invalid_argument);
}

TEST(csv, table_row_arity_checked) {
  table_writer t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(csv, table_prints_aligned_columns) {
  table_writer t({"name", "n"});
  t.add_row({"short", "1"});
  t.add_row({"much-longer-name", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("much-longer-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Header line and each row start at column 0; the "n" column must be
  // aligned to the same offset on every line.
  std::istringstream lines(text);
  std::string header, rule, r1, r2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, r1);
  std::getline(lines, r2);
  EXPECT_EQ(header.find('n', 4), r1.find('1'));
  EXPECT_EQ(r1.find('1'), r2.find("22"));
}

TEST(csv, num_formats_significant_digits) {
  EXPECT_EQ(table_writer::num(3.14159, 3), "3.14");
  EXPECT_EQ(table_writer::num(1234.0, 2), "1.2e+03");
  EXPECT_EQ(table_writer::num(2.0), "2");
}

TEST(csv, series_block_format) {
  std::ostringstream out;
  print_series(out, "curve-A", {1.0, 2.0}, {10.0, 20.0});
  const std::string text = out.str();
  EXPECT_NE(text.find("# series: curve-A\n"), std::string::npos);
  EXPECT_NE(text.find("1 10\n"), std::string::npos);
  EXPECT_NE(text.find("2 20\n"), std::string::npos);
  EXPECT_TRUE(text.ends_with("\n\n")) << "series blocks end with a blank line";
}

TEST(csv, series_size_mismatch_throws) {
  std::ostringstream out;
  EXPECT_THROW(print_series(out, "bad", {1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(csv, fit_line_format) {
  std::ostringstream out;
  print_fit_line(out, "fig1/r100", "exponent=0.79 r2=0.99");
  EXPECT_EQ(out.str(), "FIT: fig1/r100 exponent=0.79 r2=0.99\n");
}

}  // namespace
}  // namespace mcast
