// xy_series and sampling grids.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/series.hpp"

namespace mcast {
namespace {

TEST(series, add_points) {
  xy_series s;
  s.label = "curve";
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x[1], 3.0);
  EXPECT_DOUBLE_EQ(s.y[1], 4.0);
  EXPECT_TRUE(s.yerr.empty());
}

TEST(series, error_bars_all_or_nothing) {
  xy_series s;
  s.add(1.0, 2.0, 0.1);
  s.add(2.0, 3.0, 0.2);
  EXPECT_EQ(s.yerr.size(), 2u);
  EXPECT_THROW(s.add(3.0, 4.0), std::invalid_argument);

  xy_series t;
  t.add(1.0, 2.0);
  EXPECT_THROW(t.add(2.0, 3.0, 0.1), std::invalid_argument);
}

TEST(log_grid_integers, covers_endpoints_sorted_unique) {
  const auto g = log_grid_integers(1, 10000, 20);
  ASSERT_GE(g.size(), 10u);
  EXPECT_EQ(g.front(), 1u);
  EXPECT_EQ(g.back(), 10000u);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_LT(g[i - 1], g[i]);
}

TEST(log_grid_integers, small_ranges) {
  EXPECT_EQ(log_grid_integers(5, 5, 10), (std::vector<std::uint64_t>{5}));
  const auto g = log_grid_integers(1, 3, 10);
  EXPECT_EQ(g.front(), 1u);
  EXPECT_EQ(g.back(), 3u);
  for (std::uint64_t v : g) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3u);
  }
}

TEST(log_grid_integers, single_point_request) {
  EXPECT_EQ(log_grid_integers(2, 50, 1), (std::vector<std::uint64_t>{2, 50}));
}

TEST(log_grid_integers, validation) {
  EXPECT_THROW(log_grid_integers(0, 5, 3), std::invalid_argument);
  EXPECT_THROW(log_grid_integers(6, 5, 3), std::invalid_argument);
  EXPECT_THROW(log_grid_integers(1, 5, 0), std::invalid_argument);
}

TEST(log_grid, geometric_spacing) {
  const auto g = log_grid(1.0, 100.0, 3);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_NEAR(g[1], 10.0, 1e-9);
  EXPECT_NEAR(g[2], 100.0, 1e-9);
  EXPECT_THROW(log_grid(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(log_grid(-1.0, 1.0, 3), std::invalid_argument);
}

TEST(linear_grid, spacing_and_endpoints) {
  const auto g = linear_grid(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_DOUBLE_EQ(g[4], 1.0);
  EXPECT_EQ(linear_grid(2.0, 2.0, 7).size(), 1u);
  EXPECT_THROW(linear_grid(1.0, 0.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace mcast
