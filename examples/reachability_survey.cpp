// Reachability survey — Section 4's diagnostic applied across the paper's
// topology suite: measure S(r)/T(r), fit the exponential growth rate, and
// test how well Eq 30 predicts the measured multicast tree size from the
// reachability profile alone.
//
//   $ reachability_survey [max_nodes]
//
// The punchline column ("eq30 err") shows the paper's dichotomy: networks
// with exponential T(r) (high R²) are predicted well; sub-exponential ones
// (TIERS-style, MBone-style) less so.
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/reachability.hpp"
#include "graph/components.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

int main(int argc, char** argv) {
  using namespace mcast;

  const node_id budget = argc > 1 ? static_cast<node_id>(std::atoi(argv[1])) : 2000;
  const auto suite = scaled_networks(paper_networks(), budget);

  table_writer table({"network", "nodes", "ubar", "T(r) growth", "R^2(lnT~r)",
                      "eq30 err @ n=64"});
  rng gen(2026);
  for (const auto& entry : suite) {
    const graph g = largest_component(entry.build(3));
    const node_id source = static_cast<node_id>(gen.below(g.node_count()));
    const reachability_profile prof = reachability_from(g, source);
    const reachability_growth_fit fit = fit_reachability_growth(prof);

    // Measure L̂(64) from this source and compare with Eq 30's prediction.
    const source_tree tree(g, source);
    const std::vector<node_id> universe = all_sites_except(g, source);
    delivery_tree_builder builder(tree);
    double measured = 0.0;
    constexpr int reps = 60;
    for (int rep = 0; rep < reps; ++rep) {
      builder.reset();
      for (node_id v : sample_with_replacement(universe, 64, gen)) {
        builder.add_receiver(v);
      }
      measured += static_cast<double>(builder.link_count());
    }
    measured /= reps;
    const double predicted = general_tree_size_all_sites(prof.s, 64.0);
    const double err = (predicted - measured) / measured * 100.0;

    table.add_row({entry.name, std::to_string(g.node_count()),
                   table_writer::num(prof.mean_distance(), 4),
                   table_writer::num(fit.lambda, 3),
                   table_writer::num(fit.r_squared, 4),
                   table_writer::num(err, 3) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nhigh R^2 -> exponential reachability -> the paper's\n"
               "L(n) ~ n(c - ln(n/M)/lambda) form applies (Section 4.2).\n";
  return 0;
}
