// Membership churn — a multicast session under Poisson-style join/leave,
// served by the dynamic_delivery_tree extension. Shows the instantaneous
// tree size tracking the Chuang-Sirbu prediction L ≈ ū·A·m^ε as the group
// breathes, which is precisely the assumption behind usage-based multicast
// tariffs.
//
//   $ churn_session [nodes]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "multicast/dynamic_tree.hpp"
#include "multicast/unicast.hpp"
#include "sim/csv.hpp"
#include "topo/transit_stub.hpp"

int main(int argc, char** argv) {
  using namespace mcast;

  transit_stub_params topo = ts1000_params();
  if (argc > 1) {
    const int nodes = std::atoi(argv[1]);
    while (static_cast<int>(transit_stub_node_count(topo)) > nodes &&
           topo.stub_domain_size > 1) {
      --topo.stub_domain_size;
    }
  }
  const graph g = make_transit_stub(topo, /*seed=*/3);

  // Calibrate the law once (as a provider would).
  monte_carlo_params mc;
  mc.receiver_sets = 15;
  mc.sources = 10;
  const auto rows =
      measure_distinct_receivers(g, default_group_grid(g.node_count() - 1, 12), mc);
  const scaling_law law =
      scaling_law::fit_to(rows, 2.0, 0.5 * static_cast<double>(g.node_count()));

  // Run one session: joins at rate lambda, each member leaves after a
  // geometric number of ticks; sample the tree every 100 events.
  const node_id source = 0;
  const source_tree tree(g, source);
  const double ubar = unicast_average_length_all(tree);
  dynamic_delivery_tree session(tree);
  rng gen(99);
  std::vector<node_id> members;

  std::cout << "session on " << g.name() << " (" << g.node_count()
            << " nodes), law " << law.describe() << ", ubar=" << ubar << "\n\n";
  table_writer log({"event#", "members", "links L", "predicted", "L/pred"});
  const int events = 4000;
  for (int e = 1; e <= events; ++e) {
    // Early on joins dominate; later the session drains.
    const double join_probability = e < events / 2 ? 0.7 : 0.3;
    if (members.empty() || gen.chance(join_probability)) {
      node_id v = static_cast<node_id>(gen.below(g.node_count()));
      if (v == source) v = (v + 1) % g.node_count();
      session.join(v);
      members.push_back(v);
    } else {
      const std::size_t i = gen.below(members.size());
      session.leave(members[i]);
      members[i] = members.back();
      members.pop_back();
    }
    if (e % 400 == 0 && session.distinct_receiver_sites() > 0) {
      const double m = static_cast<double>(session.distinct_receiver_sites());
      const double predicted = law.tree_size(m, ubar);
      log.add_row({std::to_string(e), std::to_string(members.size()),
                   std::to_string(session.link_count()),
                   table_writer::num(predicted, 5),
                   table_writer::num(static_cast<double>(session.link_count()) /
                                         predicted,
                                     3)});
    }
  }
  log.print(std::cout);
  std::cout << "\nthe fitted law predicts the live tree within a few percent "
               "across the session — the premise of m^0.8-based tariffs.\n";
  return 0;
}
