// Multicast pricing — the application Chuang & Sirbu designed the scaling
// law for. Fits the law on an Internet-like power-law topology and prints a
// tariff sheet: cost-based multicast price vs per-receiver unicast billing,
// the savings curve, and the flat-rate plan capacity.
//
//   $ multicast_pricing [nodes]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/pricing.hpp"
#include "core/runner.hpp"
#include "graph/metrics.hpp"
#include "sim/csv.hpp"
#include "topo/power_law.hpp"

int main(int argc, char** argv) {
  using namespace mcast;

  barabasi_albert_params topo;
  topo.nodes = argc > 1 ? static_cast<node_id>(std::atoi(argv[1])) : 4000;
  topo.edges_per_node = 2;
  const graph g = make_barabasi_albert(topo, /*seed=*/7);
  std::cout << "provider backbone: " << g.name() << " (" << g.node_count()
            << " routers, " << g.edge_count() << " links)\n";

  // Fit the law from measurement, exactly as a provider would calibrate a
  // tariff from traffic studies.
  monte_carlo_params mc;
  mc.receiver_sets = 20;
  mc.sources = 15;
  const auto grid = default_group_grid(g.node_count() - 1, 14);
  const auto measurement = measure_distinct_receivers(g, grid, mc);
  const scaling_law law =
      scaling_law::fit_to(measurement, 2.0, 0.5 * g.node_count());
  std::cout << "calibrated law: " << law.describe() << "\n\n";

  pricing_policy policy;
  policy.unit_price_per_link = 0.01;  // $ per link-hop per month
  policy.mean_unicast_path = measurement.front().unicast_mean;
  policy.law = law;

  table_writer sheet({"group", "unicast $", "multicast $", "$/receiver",
                      "savings"});
  for (double m : {1.0, 5.0, 20.0, 100.0, 500.0, 2000.0}) {
    sheet.add_row({table_writer::num(m, 4),
                   table_writer::num(unicast_price(policy, m), 4),
                   table_writer::num(multicast_price(policy, m), 4),
                   table_writer::num(multicast_price_per_receiver(policy, m), 3),
                   table_writer::num(multicast_savings_fraction(policy, m) * 100.0, 3) + "%"});
  }
  sheet.print(std::cout);

  std::cout << "\ngroup size for 50% savings : "
            << group_size_for_savings(policy, 0.5) << " receivers\n";
  const double flat = 30.0 * policy.unit_price_per_link * policy.mean_unicast_path;
  std::cout << "a flat plan priced at 30 unicast-streams covers groups up to "
            << flat_rate_capacity(policy, flat) << " receivers\n";
  return 0;
}
