// Receiver affinity study — the Section 5 scenario the paper motivates:
// teleconference participants cluster (affinity, β > 0) while sensor-network
// sites spread out (disaffinity, β < 0). Prints the delivery-tree size and
// per-receiver link cost across the β ladder, bracketed by the β = ±∞
// greedy extremes.
//
//   $ affinity_teleconference [depth]
#include <cstdlib>
#include <iostream>
#include <string>

#include "multicast/affinity.hpp"
#include "multicast/receivers.hpp"
#include "sim/csv.hpp"
#include "topo/kary.hpp"

int main(int argc, char** argv) {
  using namespace mcast;

  const unsigned depth = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 9;
  const kary_shape shape(2, depth);
  const graph g = shape.to_graph();
  const source_tree tree(g, 0);
  const std::vector<node_id> universe = all_sites_except(g, 0);
  const kary_distance_oracle oracle(shape);
  const std::size_t group = 40;

  std::cout << "binary tree depth " << depth << " (" << g.node_count()
            << " nodes), group of " << group << " receivers\n\n";

  rng greedy_gen(1);
  const auto packed = greedy_affinity_trajectory(tree, universe, group, greedy_gen);
  const auto spread = greedy_disaffinity_trajectory(tree, universe, group, greedy_gen);

  table_writer table({"beta", "scenario", "links L", "L per receiver",
                      "mean pair dist"});
  table.add_row({"+inf", "single room", table_writer::num(packed.back(), 5),
                 table_writer::num(packed.back() / double(group), 3), "-"});

  const struct {
    double beta;
    const char* scenario;
  } rows[] = {
      {10.0, "tight teleconference"}, {1.0, "regional meeting"},
      {0.1, "mild clustering"},       {0.0, "uniform (CS model)"},
      {-0.1, "mild spreading"},       {-1.0, "field deployment"},
      {-10.0, "sensor grid"},
  };
  for (const auto& row : rows) {
    affinity_chain_params params;
    params.beta = row.beta;
    params.burn_in_sweeps = 20;
    params.sample_sweeps = 8;
    rng gen(1234);
    const auto est =
        sample_affinity_tree_size(tree, universe, group, oracle, params, gen);
    table.add_row({table_writer::num(row.beta, 3), row.scenario,
                   table_writer::num(est.mean_tree_size, 5),
                   table_writer::num(est.mean_tree_size / double(group), 3),
                   table_writer::num(est.mean_pair_distance, 4)});
  }
  table.add_row({"-inf", "maximal spread", table_writer::num(spread.back(), 5),
                 table_writer::num(spread.back() / double(group), 3), "-"});
  table.print(std::cout);

  std::cout << "\nclustered groups need far fewer links per receiver — the\n"
               "paper's point that affinity matters at fixed n, even though\n"
               "it washes out in the large-network limit (Section 5.4).\n";
  return 0;
}
