// mcastlab — command-line front end to the library, for users who want the
// paper's measurements on their own topologies without writing C++.
//
//   mcastlab networks                          list the built-in suite
//   mcastlab table1 [--budget N]               Table 1 over the suite
//   mcastlab measure <network|file> [--sets N] [--sources N] [--seed S]
//                                              L(m)/ubar curve + fitted law
//   mcastlab reach <network|file>              S(r)/T(r) profile + growth fit
//   mcastlab degrees <network|file>            degree CCDF + power-law fit
//   mcastlab tree <network|file> <source> <m>  one delivery tree as DOT
//
// <network> is a catalog name (r100, ts1000, ts1008, ti5000, ARPA, MBone,
// Internet, AS); anything else is treated as an edge-list file path
// (format: graph/io.hpp).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/degree_powerlaw.hpp"
#include "analysis/reachability.hpp"
#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "graph/components.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "multicast/delivery_tree.hpp"
#include "multicast/receivers.hpp"
#include "sim/csv.hpp"
#include "topo/catalog.hpp"

namespace {

using namespace mcast;

int usage() {
  std::cerr << "usage: mcastlab networks | table1 [--budget N]\n"
               "       mcastlab measure <network|file> [--sets N] [--sources N] [--seed S]\n"
               "       mcastlab reach <network|file>\n"
               "       mcastlab degrees <network|file>\n"
               "       mcastlab tree <network|file> <source> <m>\n";
  return 2;
}

graph load_topology(const std::string& name) {
  for (const auto& e : paper_networks()) {
    if (e.name == name) return largest_component(e.build(7));
  }
  return largest_component(load_edge_list(name));
}

// Parses "--flag value" pairs from argv[from..).
std::uint64_t flag_value(int argc, char** argv, int from, const std::string& flag,
                         std::uint64_t fallback) {
  for (int i = from; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::strtoull(argv[i + 1], nullptr, 10);
  }
  return fallback;
}

int cmd_networks() {
  table_writer t({"name", "kind"});
  for (const auto& e : paper_networks()) {
    t.add_row({e.name, e.kind == network_kind::generated ? "generated" : "real-style"});
  }
  t.print(std::cout);
  return 0;
}

int cmd_table1(int argc, char** argv) {
  const node_id budget =
      static_cast<node_id>(flag_value(argc, argv, 2, "--budget", 4000));
  table_writer t({"network", "nodes", "links", "avg degree", "avg path", "diameter"});
  for (const auto& e : scaled_networks(paper_networks(), budget)) {
    const table1_row row = summarize_network(largest_component(e.build(7)));
    t.add_row({row.name, std::to_string(row.nodes), std::to_string(row.links),
               table_writer::num(row.avg_degree, 3),
               table_writer::num(row.avg_path_length, 4),
               std::to_string(row.diameter)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_measure(int argc, char** argv) {
  if (argc < 3) return usage();
  const graph g = load_topology(argv[2]);
  monte_carlo_params mc;
  mc.receiver_sets = flag_value(argc, argv, 3, "--sets", 30);
  mc.sources = flag_value(argc, argv, 3, "--sources", 20);
  mc.seed = flag_value(argc, argv, 3, "--seed", 1999);

  const auto grid = default_group_grid(g.node_count() - 1, 18);
  const auto rows = measure_distinct_receivers(g, grid, mc);
  table_writer t({"m", "L(m)", "stderr", "ubar", "L/ubar"});
  for (const auto& p : rows) {
    t.add_row({std::to_string(p.group_size), table_writer::num(p.tree_links_mean),
               table_writer::num(p.tree_links_stderr, 3),
               table_writer::num(p.unicast_mean), table_writer::num(p.ratio_mean)});
  }
  t.print(std::cout);
  const scaling_law law =
      scaling_law::fit_to(rows, 2.0, 0.5 * static_cast<double>(g.node_count()));
  std::cout << "\n" << g.name() << ": " << law.describe() << "\n";
  return 0;
}

int cmd_reach(int argc, char** argv) {
  if (argc < 3) return usage();
  const graph g = load_topology(argv[2]);
  rng gen(7);
  const reachability_profile prof = mean_reachability(g, 32, gen);
  table_writer t({"r", "S(r)", "T(r)"});
  for (std::size_t r = 1; r < prof.s.size(); ++r) {
    t.add_row({std::to_string(r), table_writer::num(prof.s[r], 6),
               table_writer::num(prof.t[r], 6)});
  }
  t.print(std::cout);
  const reachability_growth_fit fit = fit_reachability_growth(prof);
  std::cout << "\nubar=" << prof.mean_distance() << "  growth lambda="
            << fit.lambda << "  R2(ln T ~ r)=" << fit.r_squared
            << (fit.r_squared > 0.97 ? "  [exponential regime]"
                                     : "  [sub-exponential regime]")
            << "\n";
  return 0;
}

int cmd_degrees(int argc, char** argv) {
  if (argc < 3) return usage();
  const graph g = load_topology(argv[2]);
  table_writer t({"degree", "P(D >= d)"});
  for (const ccdf_point& p : degree_ccdf(g)) {
    t.add_row({std::to_string(p.degree), table_writer::num(p.fraction, 5)});
  }
  t.print(std::cout);
  try {
    const degree_powerlaw_fit fit = fit_degree_powerlaw(g, 2);
    std::cout << "\npower-law tail: exponent=" << fit.exponent
              << "  R2=" << fit.r_squared
              << (fit.r_squared > 0.9 ? "  [heavy-tailed]" : "  [not power-law]")
              << "\n";
  } catch (const std::invalid_argument&) {
    std::cout << "\n(no degree tail to fit)\n";
  }
  return 0;
}

int cmd_tree(int argc, char** argv) {
  if (argc < 5) return usage();
  const graph g = load_topology(argv[2]);
  const node_id source = static_cast<node_id>(std::strtoull(argv[3], nullptr, 10));
  const std::size_t m = std::strtoull(argv[4], nullptr, 10);
  const source_tree tree(g, source);
  rng gen(1);
  const auto receivers = sample_distinct(all_sites_except(g, source), m, gen);
  const auto links = delivery_tree_links(tree, receivers);
  std::cout << "graph \"delivery-tree\" {\n  // source " << source << ", "
            << links.size() << " links\n";
  for (const edge& e : links) std::cout << "  " << e.a << " -- " << e.b << ";\n";
  std::cout << "}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "networks") return cmd_networks();
    if (cmd == "table1") return cmd_table1(argc, argv);
    if (cmd == "measure") return cmd_measure(argc, argv);
    if (cmd == "reach") return cmd_reach(argc, argv);
    if (cmd == "degrees") return cmd_degrees(argc, argv);
    if (cmd == "tree") return cmd_tree(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "mcastlab: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
