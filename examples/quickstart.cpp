// Quickstart: generate a topology, measure the multicast scaling curve,
// fit the Chuang-Sirbu law and print what it means.
//
//   $ quickstart [nodes]
//
// Walks the whole public API surface in ~50 lines: topology generation
// (topo/), Monte-Carlo measurement (core/runner), law fitting
// (core/scaling_law) and pretty tabular output (sim/csv).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/runner.hpp"
#include "core/scaling_law.hpp"
#include "graph/metrics.hpp"
#include "sim/csv.hpp"
#include "topo/transit_stub.hpp"

int main(int argc, char** argv) {
  using namespace mcast;

  const unsigned stub_size = argc > 1 ? std::max(2, std::atoi(argv[1]) / 125) : 8;
  transit_stub_params topo = ts1000_params();
  topo.stub_domain_size = stub_size;
  const graph g = make_transit_stub(topo, /*seed=*/42);

  const table1_row info = summarize_network(g);
  std::cout << "network: " << info.name << "  nodes=" << info.nodes
            << "  links=" << info.links << "  avg-degree=" << info.avg_degree
            << "  avg-path=" << info.avg_path_length << "\n\n";

  // Measure L(m)/ū over a log-spaced grid of group sizes (Section 2 of
  // Phillips/Shenker/Tangmunarunkit, SIGCOMM '99).
  monte_carlo_params mc;
  mc.receiver_sets = 30;
  mc.sources = 20;
  const auto grid = default_group_grid(g.node_count() - 1, 16);
  const auto measurement = measure_distinct_receivers(g, grid, mc);

  table_writer table({"m", "L(m)", "ubar", "L/ubar", "m^0.8"});
  for (const auto& p : measurement) {
    table.add_row({std::to_string(p.group_size),
                   table_writer::num(p.tree_links_mean),
                   table_writer::num(p.unicast_mean),
                   table_writer::num(p.ratio_mean),
                   table_writer::num(std::pow(static_cast<double>(p.group_size), 0.8))});
  }
  table.print(std::cout);

  const scaling_law law = scaling_law::fit_to(measurement, 2.0,
                                              0.5 * static_cast<double>(g.node_count()));
  std::cout << "\nfitted law: " << law.describe() << "\n";
  std::cout << "Chuang-Sirbu predicts exponent ~0.8; this topology gives "
            << law.exponent() << ".\n";
  std::cout << "a 100-receiver group uses " << law.efficiency(100.0) * 100.0
            << "% of the links that 100 unicast streams would\n";
  return 0;
}
