file(REMOVE_RECURSE
  "CMakeFiles/test_shared_tree.dir/test_shared_tree.cpp.o"
  "CMakeFiles/test_shared_tree.dir/test_shared_tree.cpp.o.d"
  "test_shared_tree"
  "test_shared_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
