# Empty dependencies file for test_shared_tree.
# This may be replaced when dependencies are built.
