file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_tree.dir/test_dynamic_tree.cpp.o"
  "CMakeFiles/test_dynamic_tree.dir/test_dynamic_tree.cpp.o.d"
  "test_dynamic_tree"
  "test_dynamic_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
