# Empty dependencies file for test_dynamic_tree.
# This may be replaced when dependencies are built.
