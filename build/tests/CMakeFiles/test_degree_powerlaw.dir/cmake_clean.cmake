file(REMOVE_RECURSE
  "CMakeFiles/test_degree_powerlaw.dir/test_degree_powerlaw.cpp.o"
  "CMakeFiles/test_degree_powerlaw.dir/test_degree_powerlaw.cpp.o.d"
  "test_degree_powerlaw"
  "test_degree_powerlaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degree_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
