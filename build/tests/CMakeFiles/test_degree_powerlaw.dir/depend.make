# Empty dependencies file for test_degree_powerlaw.
# This may be replaced when dependencies are built.
