file(REMOVE_RECURSE
  "CMakeFiles/test_arpanet.dir/test_arpanet.cpp.o"
  "CMakeFiles/test_arpanet.dir/test_arpanet.cpp.o.d"
  "test_arpanet"
  "test_arpanet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arpanet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
