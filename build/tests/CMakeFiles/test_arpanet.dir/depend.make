# Empty dependencies file for test_arpanet.
# This may be replaced when dependencies are built.
