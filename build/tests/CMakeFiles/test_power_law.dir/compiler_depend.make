# Empty compiler generated dependencies file for test_power_law.
# This may be replaced when dependencies are built.
