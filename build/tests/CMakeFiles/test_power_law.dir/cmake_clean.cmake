file(REMOVE_RECURSE
  "CMakeFiles/test_power_law.dir/test_power_law.cpp.o"
  "CMakeFiles/test_power_law.dir/test_power_law.cpp.o.d"
  "test_power_law"
  "test_power_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
