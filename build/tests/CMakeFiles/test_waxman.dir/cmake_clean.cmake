file(REMOVE_RECURSE
  "CMakeFiles/test_waxman.dir/test_waxman.cpp.o"
  "CMakeFiles/test_waxman.dir/test_waxman.cpp.o.d"
  "test_waxman"
  "test_waxman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waxman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
