# Empty compiler generated dependencies file for test_waxman.
# This may be replaced when dependencies are built.
