file(REMOVE_RECURSE
  "CMakeFiles/test_random_graphs.dir/test_random_graphs.cpp.o"
  "CMakeFiles/test_random_graphs.dir/test_random_graphs.cpp.o.d"
  "test_random_graphs"
  "test_random_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
