# Empty compiler generated dependencies file for test_spt.
# This may be replaced when dependencies are built.
