file(REMOVE_RECURSE
  "CMakeFiles/test_spt.dir/test_spt.cpp.o"
  "CMakeFiles/test_spt.dir/test_spt.cpp.o.d"
  "test_spt"
  "test_spt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
