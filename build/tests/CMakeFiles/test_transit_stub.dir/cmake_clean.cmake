file(REMOVE_RECURSE
  "CMakeFiles/test_transit_stub.dir/test_transit_stub.cpp.o"
  "CMakeFiles/test_transit_stub.dir/test_transit_stub.cpp.o.d"
  "test_transit_stub"
  "test_transit_stub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transit_stub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
