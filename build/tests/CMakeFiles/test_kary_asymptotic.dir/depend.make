# Empty dependencies file for test_kary_asymptotic.
# This may be replaced when dependencies are built.
