file(REMOVE_RECURSE
  "CMakeFiles/test_kary_asymptotic.dir/test_kary_asymptotic.cpp.o"
  "CMakeFiles/test_kary_asymptotic.dir/test_kary_asymptotic.cpp.o.d"
  "test_kary_asymptotic"
  "test_kary_asymptotic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kary_asymptotic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
