file(REMOVE_RECURSE
  "CMakeFiles/test_unicast.dir/test_unicast.cpp.o"
  "CMakeFiles/test_unicast.dir/test_unicast.cpp.o.d"
  "test_unicast"
  "test_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
