
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_unicast.cpp" "tests/CMakeFiles/test_unicast.dir/test_unicast.cpp.o" "gcc" "tests/CMakeFiles/test_unicast.dir/test_unicast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_session.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
