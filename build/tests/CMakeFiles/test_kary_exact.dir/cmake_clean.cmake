file(REMOVE_RECURSE
  "CMakeFiles/test_kary_exact.dir/test_kary_exact.cpp.o"
  "CMakeFiles/test_kary_exact.dir/test_kary_exact.cpp.o.d"
  "test_kary_exact"
  "test_kary_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kary_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
