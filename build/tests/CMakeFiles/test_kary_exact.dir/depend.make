# Empty dependencies file for test_kary_exact.
# This may be replaced when dependencies are built.
