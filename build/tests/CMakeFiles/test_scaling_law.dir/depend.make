# Empty dependencies file for test_scaling_law.
# This may be replaced when dependencies are built.
