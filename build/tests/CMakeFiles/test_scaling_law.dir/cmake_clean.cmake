file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_law.dir/test_scaling_law.cpp.o"
  "CMakeFiles/test_scaling_law.dir/test_scaling_law.cpp.o.d"
  "test_scaling_law"
  "test_scaling_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
