# Empty compiler generated dependencies file for test_receivers.
# This may be replaced when dependencies are built.
