file(REMOVE_RECURSE
  "CMakeFiles/test_receivers.dir/test_receivers.cpp.o"
  "CMakeFiles/test_receivers.dir/test_receivers.cpp.o.d"
  "test_receivers"
  "test_receivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_receivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
