# Empty compiler generated dependencies file for test_tiers.
# This may be replaced when dependencies are built.
