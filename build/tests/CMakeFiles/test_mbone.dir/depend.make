# Empty dependencies file for test_mbone.
# This may be replaced when dependencies are built.
