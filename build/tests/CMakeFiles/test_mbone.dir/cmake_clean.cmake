file(REMOVE_RECURSE
  "CMakeFiles/test_mbone.dir/test_mbone.cpp.o"
  "CMakeFiles/test_mbone.dir/test_mbone.cpp.o.d"
  "test_mbone"
  "test_mbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
