# Empty dependencies file for test_delivery_tree.
# This may be replaced when dependencies are built.
