file(REMOVE_RECURSE
  "CMakeFiles/test_delivery_tree.dir/test_delivery_tree.cpp.o"
  "CMakeFiles/test_delivery_tree.dir/test_delivery_tree.cpp.o.d"
  "test_delivery_tree"
  "test_delivery_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delivery_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
