
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multicast/affinity.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/affinity.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/affinity.cpp.o.d"
  "/root/repo/src/multicast/delivery_tree.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/delivery_tree.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/delivery_tree.cpp.o.d"
  "/root/repo/src/multicast/dynamic_tree.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/dynamic_tree.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/dynamic_tree.cpp.o.d"
  "/root/repo/src/multicast/receivers.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/receivers.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/receivers.cpp.o.d"
  "/root/repo/src/multicast/repair.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/repair.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/repair.cpp.o.d"
  "/root/repo/src/multicast/shared_tree.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/shared_tree.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/shared_tree.cpp.o.d"
  "/root/repo/src/multicast/spt.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/spt.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/spt.cpp.o.d"
  "/root/repo/src/multicast/unicast.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/unicast.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/unicast.cpp.o.d"
  "/root/repo/src/multicast/weighted.cpp" "src/CMakeFiles/mcast_multicast.dir/multicast/weighted.cpp.o" "gcc" "src/CMakeFiles/mcast_multicast.dir/multicast/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
