file(REMOVE_RECURSE
  "CMakeFiles/mcast_multicast.dir/multicast/affinity.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/affinity.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/delivery_tree.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/delivery_tree.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/dynamic_tree.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/dynamic_tree.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/receivers.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/receivers.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/repair.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/repair.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/shared_tree.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/shared_tree.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/spt.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/spt.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/unicast.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/unicast.cpp.o.d"
  "CMakeFiles/mcast_multicast.dir/multicast/weighted.cpp.o"
  "CMakeFiles/mcast_multicast.dir/multicast/weighted.cpp.o.d"
  "libmcast_multicast.a"
  "libmcast_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
