file(REMOVE_RECURSE
  "libmcast_multicast.a"
)
