# Empty dependencies file for mcast_multicast.
# This may be replaced when dependencies are built.
