file(REMOVE_RECURSE
  "CMakeFiles/mcast_graph.dir/graph/bfs.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/bfs.cpp.o.d"
  "CMakeFiles/mcast_graph.dir/graph/builder.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/builder.cpp.o.d"
  "CMakeFiles/mcast_graph.dir/graph/components.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/components.cpp.o.d"
  "CMakeFiles/mcast_graph.dir/graph/dijkstra.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/dijkstra.cpp.o.d"
  "CMakeFiles/mcast_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/mcast_graph.dir/graph/io.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/mcast_graph.dir/graph/metrics.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/metrics.cpp.o.d"
  "CMakeFiles/mcast_graph.dir/graph/weights.cpp.o"
  "CMakeFiles/mcast_graph.dir/graph/weights.cpp.o.d"
  "libmcast_graph.a"
  "libmcast_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
