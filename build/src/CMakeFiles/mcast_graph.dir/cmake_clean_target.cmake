file(REMOVE_RECURSE
  "libmcast_graph.a"
)
