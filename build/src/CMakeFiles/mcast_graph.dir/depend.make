# Empty dependencies file for mcast_graph.
# This may be replaced when dependencies are built.
