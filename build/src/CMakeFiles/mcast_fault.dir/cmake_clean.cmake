file(REMOVE_RECURSE
  "CMakeFiles/mcast_fault.dir/fault/degraded.cpp.o"
  "CMakeFiles/mcast_fault.dir/fault/degraded.cpp.o.d"
  "CMakeFiles/mcast_fault.dir/fault/failure_model.cpp.o"
  "CMakeFiles/mcast_fault.dir/fault/failure_model.cpp.o.d"
  "libmcast_fault.a"
  "libmcast_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
