
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/degraded.cpp" "src/CMakeFiles/mcast_fault.dir/fault/degraded.cpp.o" "gcc" "src/CMakeFiles/mcast_fault.dir/fault/degraded.cpp.o.d"
  "/root/repo/src/fault/failure_model.cpp" "src/CMakeFiles/mcast_fault.dir/fault/failure_model.cpp.o" "gcc" "src/CMakeFiles/mcast_fault.dir/fault/failure_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
