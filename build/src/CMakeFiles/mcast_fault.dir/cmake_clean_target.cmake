file(REMOVE_RECURSE
  "libmcast_fault.a"
)
