# Empty dependencies file for mcast_fault.
# This may be replaced when dependencies are built.
