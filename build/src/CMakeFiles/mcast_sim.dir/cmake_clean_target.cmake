file(REMOVE_RECURSE
  "libmcast_sim.a"
)
