file(REMOVE_RECURSE
  "CMakeFiles/mcast_sim.dir/sim/csv.cpp.o"
  "CMakeFiles/mcast_sim.dir/sim/csv.cpp.o.d"
  "CMakeFiles/mcast_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/mcast_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/mcast_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/mcast_sim.dir/sim/rng.cpp.o.d"
  "libmcast_sim.a"
  "libmcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
