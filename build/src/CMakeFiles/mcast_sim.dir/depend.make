# Empty dependencies file for mcast_sim.
# This may be replaced when dependencies are built.
