# Empty compiler generated dependencies file for mcast_session.
# This may be replaced when dependencies are built.
