file(REMOVE_RECURSE
  "CMakeFiles/mcast_session.dir/session/simulator.cpp.o"
  "CMakeFiles/mcast_session.dir/session/simulator.cpp.o.d"
  "libmcast_session.a"
  "libmcast_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
