file(REMOVE_RECURSE
  "libmcast_session.a"
)
