file(REMOVE_RECURSE
  "libmcast_analysis.a"
)
