file(REMOVE_RECURSE
  "CMakeFiles/mcast_analysis.dir/analysis/degree_powerlaw.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/degree_powerlaw.cpp.o.d"
  "CMakeFiles/mcast_analysis.dir/analysis/fit.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/fit.cpp.o.d"
  "CMakeFiles/mcast_analysis.dir/analysis/kary_asymptotic.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/kary_asymptotic.cpp.o.d"
  "CMakeFiles/mcast_analysis.dir/analysis/kary_exact.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/kary_exact.cpp.o.d"
  "CMakeFiles/mcast_analysis.dir/analysis/mapping.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/mapping.cpp.o.d"
  "CMakeFiles/mcast_analysis.dir/analysis/reachability.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/reachability.cpp.o.d"
  "CMakeFiles/mcast_analysis.dir/analysis/series.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/series.cpp.o.d"
  "CMakeFiles/mcast_analysis.dir/analysis/stats.cpp.o"
  "CMakeFiles/mcast_analysis.dir/analysis/stats.cpp.o.d"
  "libmcast_analysis.a"
  "libmcast_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
