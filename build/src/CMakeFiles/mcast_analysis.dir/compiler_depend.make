# Empty compiler generated dependencies file for mcast_analysis.
# This may be replaced when dependencies are built.
