
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/degree_powerlaw.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/degree_powerlaw.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/degree_powerlaw.cpp.o.d"
  "/root/repo/src/analysis/fit.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/fit.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/fit.cpp.o.d"
  "/root/repo/src/analysis/kary_asymptotic.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/kary_asymptotic.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/kary_asymptotic.cpp.o.d"
  "/root/repo/src/analysis/kary_exact.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/kary_exact.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/kary_exact.cpp.o.d"
  "/root/repo/src/analysis/mapping.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/mapping.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/mapping.cpp.o.d"
  "/root/repo/src/analysis/reachability.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/reachability.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/reachability.cpp.o.d"
  "/root/repo/src/analysis/series.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/series.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/series.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/CMakeFiles/mcast_analysis.dir/analysis/stats.cpp.o" "gcc" "src/CMakeFiles/mcast_analysis.dir/analysis/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcast_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
