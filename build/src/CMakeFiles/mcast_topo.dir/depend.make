# Empty dependencies file for mcast_topo.
# This may be replaced when dependencies are built.
