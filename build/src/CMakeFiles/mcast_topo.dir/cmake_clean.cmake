file(REMOVE_RECURSE
  "CMakeFiles/mcast_topo.dir/topo/arpanet.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/arpanet.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/catalog.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/catalog.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/kary.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/kary.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/mbone.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/mbone.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/power_law.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/power_law.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/random.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/random.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/regular.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/regular.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/tiers.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/tiers.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/transit_stub.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/transit_stub.cpp.o.d"
  "CMakeFiles/mcast_topo.dir/topo/waxman.cpp.o"
  "CMakeFiles/mcast_topo.dir/topo/waxman.cpp.o.d"
  "libmcast_topo.a"
  "libmcast_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
