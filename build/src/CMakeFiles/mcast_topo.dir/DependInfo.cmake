
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/arpanet.cpp" "src/CMakeFiles/mcast_topo.dir/topo/arpanet.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/arpanet.cpp.o.d"
  "/root/repo/src/topo/catalog.cpp" "src/CMakeFiles/mcast_topo.dir/topo/catalog.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/catalog.cpp.o.d"
  "/root/repo/src/topo/kary.cpp" "src/CMakeFiles/mcast_topo.dir/topo/kary.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/kary.cpp.o.d"
  "/root/repo/src/topo/mbone.cpp" "src/CMakeFiles/mcast_topo.dir/topo/mbone.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/mbone.cpp.o.d"
  "/root/repo/src/topo/power_law.cpp" "src/CMakeFiles/mcast_topo.dir/topo/power_law.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/power_law.cpp.o.d"
  "/root/repo/src/topo/random.cpp" "src/CMakeFiles/mcast_topo.dir/topo/random.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/random.cpp.o.d"
  "/root/repo/src/topo/regular.cpp" "src/CMakeFiles/mcast_topo.dir/topo/regular.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/regular.cpp.o.d"
  "/root/repo/src/topo/tiers.cpp" "src/CMakeFiles/mcast_topo.dir/topo/tiers.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/tiers.cpp.o.d"
  "/root/repo/src/topo/transit_stub.cpp" "src/CMakeFiles/mcast_topo.dir/topo/transit_stub.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/transit_stub.cpp.o.d"
  "/root/repo/src/topo/waxman.cpp" "src/CMakeFiles/mcast_topo.dir/topo/waxman.cpp.o" "gcc" "src/CMakeFiles/mcast_topo.dir/topo/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
