file(REMOVE_RECURSE
  "libmcast_topo.a"
)
