file(REMOVE_RECURSE
  "CMakeFiles/mcast_core.dir/core/pricing.cpp.o"
  "CMakeFiles/mcast_core.dir/core/pricing.cpp.o.d"
  "CMakeFiles/mcast_core.dir/core/runner.cpp.o"
  "CMakeFiles/mcast_core.dir/core/runner.cpp.o.d"
  "CMakeFiles/mcast_core.dir/core/scaling_law.cpp.o"
  "CMakeFiles/mcast_core.dir/core/scaling_law.cpp.o.d"
  "CMakeFiles/mcast_core.dir/core/study.cpp.o"
  "CMakeFiles/mcast_core.dir/core/study.cpp.o.d"
  "libmcast_core.a"
  "libmcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
