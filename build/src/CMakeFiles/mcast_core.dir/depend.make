# Empty dependencies file for mcast_core.
# This may be replaced when dependencies are built.
