file(REMOVE_RECURSE
  "libmcast_core.a"
)
