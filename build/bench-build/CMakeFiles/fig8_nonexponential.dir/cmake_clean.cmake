file(REMOVE_RECURSE
  "../bench/fig8_nonexponential"
  "../bench/fig8_nonexponential.pdb"
  "CMakeFiles/fig8_nonexponential.dir/fig8_nonexponential.cpp.o"
  "CMakeFiles/fig8_nonexponential.dir/fig8_nonexponential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nonexponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
