# Empty compiler generated dependencies file for fig8_nonexponential.
# This may be replaced when dependencies are built.
