# Empty compiler generated dependencies file for ablation_mixing.
# This may be replaced when dependencies are built.
