file(REMOVE_RECURSE
  "../bench/ablation_mixing"
  "../bench/ablation_mixing.pdb"
  "CMakeFiles/ablation_mixing.dir/ablation_mixing.cpp.o"
  "CMakeFiles/ablation_mixing.dir/ablation_mixing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
