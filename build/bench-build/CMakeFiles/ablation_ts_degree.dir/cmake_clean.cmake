file(REMOVE_RECURSE
  "../bench/ablation_ts_degree"
  "../bench/ablation_ts_degree.pdb"
  "CMakeFiles/ablation_ts_degree.dir/ablation_ts_degree.cpp.o"
  "CMakeFiles/ablation_ts_degree.dir/ablation_ts_degree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ts_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
