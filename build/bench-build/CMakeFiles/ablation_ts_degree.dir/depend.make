# Empty dependencies file for ablation_ts_degree.
# This may be replaced when dependencies are built.
