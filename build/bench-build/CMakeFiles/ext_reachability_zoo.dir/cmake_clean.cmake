file(REMOVE_RECURSE
  "../bench/ext_reachability_zoo"
  "../bench/ext_reachability_zoo.pdb"
  "CMakeFiles/ext_reachability_zoo.dir/ext_reachability_zoo.cpp.o"
  "CMakeFiles/ext_reachability_zoo.dir/ext_reachability_zoo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reachability_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
