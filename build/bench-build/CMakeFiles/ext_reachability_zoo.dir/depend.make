# Empty dependencies file for ext_reachability_zoo.
# This may be replaced when dependencies are built.
