# Empty dependencies file for fig6_networks.
# This may be replaced when dependencies are built.
