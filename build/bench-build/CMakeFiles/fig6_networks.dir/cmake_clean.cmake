file(REMOVE_RECURSE
  "../bench/fig6_networks"
  "../bench/fig6_networks.pdb"
  "CMakeFiles/fig6_networks.dir/fig6_networks.cpp.o"
  "CMakeFiles/fig6_networks.dir/fig6_networks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
