# Empty compiler generated dependencies file for fig1_real.
# This may be replaced when dependencies are built.
