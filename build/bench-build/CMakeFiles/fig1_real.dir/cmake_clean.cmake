file(REMOVE_RECURSE
  "../bench/fig1_real"
  "../bench/fig1_real.pdb"
  "CMakeFiles/fig1_real.dir/fig1_real.cpp.o"
  "CMakeFiles/fig1_real.dir/fig1_real.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
