file(REMOVE_RECURSE
  "../bench/ext_weighted"
  "../bench/ext_weighted.pdb"
  "CMakeFiles/ext_weighted.dir/ext_weighted.cpp.o"
  "CMakeFiles/ext_weighted.dir/ext_weighted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
