# Empty compiler generated dependencies file for fig3_kary_leaves.
# This may be replaced when dependencies are built.
