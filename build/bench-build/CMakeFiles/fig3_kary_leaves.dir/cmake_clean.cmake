file(REMOVE_RECURSE
  "../bench/fig3_kary_leaves"
  "../bench/fig3_kary_leaves.pdb"
  "CMakeFiles/fig3_kary_leaves.dir/fig3_kary_leaves.cpp.o"
  "CMakeFiles/fig3_kary_leaves.dir/fig3_kary_leaves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kary_leaves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
