# Empty compiler generated dependencies file for fig9_affinity.
# This may be replaced when dependencies are built.
