file(REMOVE_RECURSE
  "../bench/fig9_affinity"
  "../bench/fig9_affinity.pdb"
  "CMakeFiles/fig9_affinity.dir/fig9_affinity.cpp.o"
  "CMakeFiles/fig9_affinity.dir/fig9_affinity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
