# Empty compiler generated dependencies file for fig4_csl_kary.
# This may be replaced when dependencies are built.
