file(REMOVE_RECURSE
  "../bench/fig4_csl_kary"
  "../bench/fig4_csl_kary.pdb"
  "CMakeFiles/fig4_csl_kary.dir/fig4_csl_kary.cpp.o"
  "CMakeFiles/fig4_csl_kary.dir/fig4_csl_kary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_csl_kary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
