# Empty dependencies file for fig5_kary_allsites.
# This may be replaced when dependencies are built.
