file(REMOVE_RECURSE
  "../bench/fig5_kary_allsites"
  "../bench/fig5_kary_allsites.pdb"
  "CMakeFiles/fig5_kary_allsites.dir/fig5_kary_allsites.cpp.o"
  "CMakeFiles/fig5_kary_allsites.dir/fig5_kary_allsites.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_kary_allsites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
