file(REMOVE_RECURSE
  "../bench/ablation_tiebreak"
  "../bench/ablation_tiebreak.pdb"
  "CMakeFiles/ablation_tiebreak.dir/ablation_tiebreak.cpp.o"
  "CMakeFiles/ablation_tiebreak.dir/ablation_tiebreak.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiebreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
