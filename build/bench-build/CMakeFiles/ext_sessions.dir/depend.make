# Empty dependencies file for ext_sessions.
# This may be replaced when dependencies are built.
