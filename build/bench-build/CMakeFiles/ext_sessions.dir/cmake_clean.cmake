file(REMOVE_RECURSE
  "../bench/ext_sessions"
  "../bench/ext_sessions.pdb"
  "CMakeFiles/ext_sessions.dir/ext_sessions.cpp.o"
  "CMakeFiles/ext_sessions.dir/ext_sessions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
