# Empty compiler generated dependencies file for fig1_generated.
# This may be replaced when dependencies are built.
