file(REMOVE_RECURSE
  "../bench/fig1_generated"
  "../bench/fig1_generated.pdb"
  "CMakeFiles/fig1_generated.dir/fig1_generated.cpp.o"
  "CMakeFiles/fig1_generated.dir/fig1_generated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
