file(REMOVE_RECURSE
  "../bench/ext_failures"
  "../bench/ext_failures.pdb"
  "CMakeFiles/ext_failures.dir/ext_failures.cpp.o"
  "CMakeFiles/ext_failures.dir/ext_failures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
