# Empty dependencies file for ext_failures.
# This may be replaced when dependencies are built.
