file(REMOVE_RECURSE
  "../bench/ext_shared_tree"
  "../bench/ext_shared_tree.pdb"
  "CMakeFiles/ext_shared_tree.dir/ext_shared_tree.cpp.o"
  "CMakeFiles/ext_shared_tree.dir/ext_shared_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shared_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
