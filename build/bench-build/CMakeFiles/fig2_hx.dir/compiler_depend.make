# Empty compiler generated dependencies file for fig2_hx.
# This may be replaced when dependencies are built.
