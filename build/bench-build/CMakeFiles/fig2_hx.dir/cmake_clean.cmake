file(REMOVE_RECURSE
  "../bench/fig2_hx"
  "../bench/fig2_hx.pdb"
  "CMakeFiles/fig2_hx.dir/fig2_hx.cpp.o"
  "CMakeFiles/fig2_hx.dir/fig2_hx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
