file(REMOVE_RECURSE
  "../bench/fig7_reachability"
  "../bench/fig7_reachability.pdb"
  "CMakeFiles/fig7_reachability.dir/fig7_reachability.cpp.o"
  "CMakeFiles/fig7_reachability.dir/fig7_reachability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
