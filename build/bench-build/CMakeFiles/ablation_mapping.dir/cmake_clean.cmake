file(REMOVE_RECURSE
  "../bench/ablation_mapping"
  "../bench/ablation_mapping.pdb"
  "CMakeFiles/ablation_mapping.dir/ablation_mapping.cpp.o"
  "CMakeFiles/ablation_mapping.dir/ablation_mapping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
