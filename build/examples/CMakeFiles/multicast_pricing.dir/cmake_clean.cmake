file(REMOVE_RECURSE
  "CMakeFiles/multicast_pricing.dir/multicast_pricing.cpp.o"
  "CMakeFiles/multicast_pricing.dir/multicast_pricing.cpp.o.d"
  "multicast_pricing"
  "multicast_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
