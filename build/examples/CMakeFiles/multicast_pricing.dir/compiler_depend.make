# Empty compiler generated dependencies file for multicast_pricing.
# This may be replaced when dependencies are built.
