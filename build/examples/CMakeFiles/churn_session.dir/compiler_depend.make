# Empty compiler generated dependencies file for churn_session.
# This may be replaced when dependencies are built.
