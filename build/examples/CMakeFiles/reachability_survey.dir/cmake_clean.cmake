file(REMOVE_RECURSE
  "CMakeFiles/reachability_survey.dir/reachability_survey.cpp.o"
  "CMakeFiles/reachability_survey.dir/reachability_survey.cpp.o.d"
  "reachability_survey"
  "reachability_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
