# Empty compiler generated dependencies file for reachability_survey.
# This may be replaced when dependencies are built.
