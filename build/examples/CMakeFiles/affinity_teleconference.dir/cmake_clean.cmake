file(REMOVE_RECURSE
  "CMakeFiles/affinity_teleconference.dir/affinity_teleconference.cpp.o"
  "CMakeFiles/affinity_teleconference.dir/affinity_teleconference.cpp.o.d"
  "affinity_teleconference"
  "affinity_teleconference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affinity_teleconference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
