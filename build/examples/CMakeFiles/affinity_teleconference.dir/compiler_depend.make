# Empty compiler generated dependencies file for affinity_teleconference.
# This may be replaced when dependencies are built.
