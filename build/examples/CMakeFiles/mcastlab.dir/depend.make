# Empty dependencies file for mcastlab.
# This may be replaced when dependencies are built.
