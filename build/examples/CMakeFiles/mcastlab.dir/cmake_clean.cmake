file(REMOVE_RECURSE
  "CMakeFiles/mcastlab.dir/mcastlab.cpp.o"
  "CMakeFiles/mcastlab.dir/mcastlab.cpp.o.d"
  "mcastlab"
  "mcastlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcastlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
